package coord

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/experiment"
)

// EventKind classifies coordinator progress events.
type EventKind string

const (
	EventWorkerJoin  EventKind = "worker-join"
	EventWorkerLeave EventKind = "worker-leave"
	EventLeaseGrant  EventKind = "lease-grant"
	EventLeaseSteal  EventKind = "lease-steal"
	EventRequeue     EventKind = "requeue"
	EventRecord      EventKind = "record"
	EventResume      EventKind = "resume"
	EventDone        EventKind = "done"
)

// Event is one coordinator progress notification, delivered to
// Config.OnEvent outside the coordinator's lock. Done/Total track the
// sweep's recorded-run count.
type Event struct {
	Kind    EventKind
	Worker  string
	Lease   int64
	Indices []int
	Index   int
	Detail  string
	Done    int
	Total   int
}

// Config describes a coordinated sweep.
type Config struct {
	// Addr is the TCP listen address, e.g. ":9650" or "127.0.0.1:0".
	Addr string
	// Desc is the sweep spec, in the serializable form every worker
	// re-resolves and fingerprint-checks.
	Desc SpecDesc
	// ChunkSize caps the indices per lease (default 16). Small chunks
	// bound the work lost to a dead worker; the pool refills a worker
	// the moment it asks again.
	ChunkSize int
	// LeaseTTL is how long a worker session may stay silent before it
	// is declared dead and its leases are reassigned (default 10s).
	// Workers heartbeat at TTL/3.
	LeaseTTL time.Duration
	// Checkpoint is a JSONL file the coordinator appends every
	// accepted record to; restarting with the same file resumes the
	// sweep (successes served, failures retried — the resume
	// semantics of experiment.Execute). Empty disables persistence.
	Checkpoint string
	// Linger is how long after completion the coordinator keeps
	// answering lease requests with "done" so connected workers exit
	// cleanly (default 2s).
	Linger time.Duration
	// OnEvent, if non-nil, receives progress events. It is called
	// synchronously from coordinator goroutines and must not call
	// back into the Coordinator.
	OnEvent func(Event)
}

func (cfg Config) normalized() Config {
	if cfg.ChunkSize < 1 {
		cfg.ChunkSize = 16
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.Linger <= 0 {
		cfg.Linger = 2 * time.Second
	}
	return cfg
}

// session is one worker connection's identity; the lease table keys
// ownership on the session pointer, so a worker that reconnects is a
// new session and never resumes its old leases (their indices are
// reassigned by the drop of the old session).
type session struct {
	wire   *wire
	worker string
}

// Coordinator owns one sweep: the spec, the pending pool, the lease
// table, the record store and the listener. Create with New, drive
// with Run.
type Coordinator struct {
	cfg     Config
	spec    experiment.Spec
	runs    []experiment.Run
	fp      string
	ln      net.Listener
	resumed int

	mu      sync.Mutex
	table   *table
	results map[int]*experiment.RunResult
	done    int
	conns   map[net.Conn]bool
	failErr error
	ckw     *experiment.CheckpointWriter

	doneCh    chan struct{}
	abortCh   chan struct{}
	onceDone  sync.Once
	onceAbort sync.Once

	wg sync.WaitGroup
}

// New resolves the spec, loads (and repairs) the checkpoint if one is
// configured, and starts listening. The sweep does not run until Run.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.normalized()
	spec, err := cfg.Desc.Spec()
	if err != nil {
		return nil, err
	}
	runs, err := spec.Runs()
	if err != nil {
		return nil, err
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:     cfg,
		spec:    spec,
		runs:    runs,
		fp:      fp,
		results: make(map[int]*experiment.RunResult, len(runs)),
		conns:   map[net.Conn]bool{},
		doneCh:  make(chan struct{}),
		abortCh: make(chan struct{}),
	}
	if cfg.Checkpoint != "" {
		ckw, cached, err := experiment.OpenCoordinatorCheckpoint(cfg.Checkpoint, runs)
		if err != nil {
			return nil, err
		}
		c.ckw = ckw
		// Successes are final; failures are retried on this resume,
		// exactly as a single-process Execute resume would.
		for idx, rr := range cached {
			if rr.Err == "" {
				c.results[idx] = rr
			}
		}
	}
	var pending []int
	for i := range runs {
		if c.results[i] == nil {
			pending = append(pending, i)
		}
	}
	c.table = newTable(pending)
	c.done = len(c.results)
	c.resumed = c.done
	if c.done == len(runs) {
		c.onceDone.Do(func() { close(c.doneCh) })
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		if c.ckw != nil {
			c.ckw.Close()
		}
		return nil, fmt.Errorf("coord: listen %s: %w", cfg.Addr, err)
	}
	c.ln = ln
	return c, nil
}

// Addr returns the listener's resolved address (useful with ":0").
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Runs returns the expanded size of the sweep.
func (c *Coordinator) Runs() int { return len(c.runs) }

// Resumed returns how many runs were served from the checkpoint at
// startup.
func (c *Coordinator) Resumed() int { return c.resumed }

// Run serves workers until every run is recorded, the context is
// canceled, or a fatal error (determinism violation) occurs. It
// returns the report of everything recorded — complete and
// byte-identical to an unsharded Execute when err is nil, partial
// otherwise. The coordinator cannot be reused after Run returns;
// restart by constructing a new one on the same checkpoint file.
func (c *Coordinator) Run(ctx context.Context) (*experiment.Report, error) {
	c.event(Event{Kind: EventResume, Done: c.done, Total: len(c.runs)})
	c.wg.Add(1)
	go c.acceptLoop()

	var runErr error
	select {
	case <-ctx.Done():
		runErr = ctx.Err()
	case <-c.abortCh:
		c.mu.Lock()
		runErr = c.failErr
		c.mu.Unlock()
	case <-c.doneCh:
		c.event(Event{Kind: EventDone, Done: c.done, Total: len(c.runs)})
		// Keep answering "done" briefly so workers between leases
		// learn the sweep finished and exit cleanly instead of
		// burning their reconnect budget on a vanished coordinator.
		t := time.NewTimer(c.cfg.Linger)
		select {
		case <-t.C:
		case <-ctx.Done():
		}
		t.Stop()
	}

	c.ln.Close()
	c.mu.Lock()
	for conn := range c.conns {
		conn.Close()
	}
	c.mu.Unlock()
	c.wg.Wait()

	c.mu.Lock()
	rep := &experiment.Report{Results: make([]experiment.RunResult, 0, c.done)}
	for i := range c.runs {
		if rr := c.results[i]; rr != nil {
			rep.Results = append(rep.Results, *rr)
		}
	}
	c.mu.Unlock()
	if c.ckw != nil {
		if err := c.ckw.Close(); err != nil && runErr == nil {
			runErr = err
		}
	}
	return rep, runErr
}

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.mu.Lock()
		c.conns[conn] = true
		c.mu.Unlock()
		c.wg.Add(1)
		go c.serve(conn)
	}
}

func (c *Coordinator) event(ev Event) {
	if c.cfg.OnEvent != nil {
		c.cfg.OnEvent(ev)
	}
}

func (c *Coordinator) fail(err error) {
	c.mu.Lock()
	if c.failErr == nil {
		c.failErr = err
	}
	c.mu.Unlock()
	c.onceAbort.Do(func() { close(c.abortCh) })
}

// serve runs one worker session: handshake, then a request loop whose
// read deadline IS the lease expiry mechanism — every message from
// the worker (records, heartbeats, requests) pushes the deadline out
// by one lease TTL, and a session silent for a full TTL is declared
// dead. Disconnects (a killed worker's FIN/RST) are detected
// immediately by the failed read. Either way the session's leases are
// released on exit and their unfinished runs reassigned.
func (c *Coordinator) serve(conn net.Conn) {
	defer c.wg.Done()
	w := newWire(conn)
	sess := &session{wire: w}
	reason := "disconnected"
	defer func() {
		c.dropSession(conn, sess, reason)
		conn.Close()
	}()

	ttl := c.cfg.LeaseTTL
	m, err := w.recv(time.Now().Add(ttl))
	if err != nil || m.Type != msgHello {
		return
	}
	if m.Proto != ProtoVersion {
		w.send(message{Type: msgError, Error: fmt.Sprintf("coord: protocol version %d, want %d", m.Proto, ProtoVersion)})
		return
	}
	sess.worker = m.Worker
	if sess.worker == "" {
		sess.worker = conn.RemoteAddr().String()
	}
	desc := c.cfg.Desc
	if err := w.send(message{
		Type: msgSpec, Spec: &desc, Fingerprint: c.fp,
		Runs: len(c.runs), LeaseTTLMS: ttl.Milliseconds(),
	}); err != nil {
		return
	}
	c.event(Event{Kind: EventWorkerJoin, Worker: sess.worker, Done: c.doneCount(), Total: len(c.runs)})

	for {
		m, err := w.recv(time.Now().Add(ttl))
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				reason = fmt.Sprintf("lease expired (silent for %v)", ttl)
			}
			return
		}
		switch m.Type {
		case msgHeartbeat:
			// The read deadline reset above is the renewal.
		case msgRecord:
			if m.Record == nil {
				continue
			}
			if err := c.ingest(sess, *m.Record); err != nil {
				w.send(message{Type: msgError, Error: err.Error()})
				reason = fmt.Sprintf("rejected record: %v", err)
				return
			}
		case msgLeaseComplete:
			c.completeLease(sess, m.Lease)
		case msgLeaseRequest:
			if err := w.send(c.grantOrWait(sess)); err != nil {
				return
			}
		}
	}
}

func (c *Coordinator) doneCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done
}

// grantOrWait answers a lease request: done when the sweep is
// complete, a fresh lease from the pending pool, a stolen tail of the
// biggest straggler when the pool is dry, or wait when every
// unfinished run is a lone in-flight index that cannot be split.
func (c *Coordinator) grantOrWait(sess *session) message {
	c.mu.Lock()
	if c.done == len(c.runs) {
		c.mu.Unlock()
		return message{Type: msgDone}
	}
	if l := c.table.grant(sess, sess.worker, c.cfg.ChunkSize); l != nil {
		idxs := l.sortedRemaining()
		done := c.done
		c.mu.Unlock()
		c.event(Event{Kind: EventLeaseGrant, Worker: sess.worker, Lease: l.id, Indices: idxs, Done: done, Total: len(c.runs)})
		return message{Type: msgLease, Lease: l.id, Indices: idxs}
	}
	if l, victim := c.table.steal(sess, sess.worker, c.cfg.ChunkSize); l != nil {
		idxs := l.sortedRemaining()
		done := c.done
		victimName := victim.worker
		c.mu.Unlock()
		c.event(Event{Kind: EventLeaseSteal, Worker: sess.worker, Lease: l.id, Indices: idxs,
			Detail: fmt.Sprintf("stolen from %s (lease %d)", victimName, victim.id), Done: done, Total: len(c.runs)})
		return message{Type: msgLease, Lease: l.id, Indices: idxs}
	}
	c.mu.Unlock()
	return message{Type: msgWait}
}

// ingest validates, dedupes and persists one record. Ordering rules
// mirror LoadCheckpoints exactly: first success wins, a success
// replaces a recorded failure, duplicate successes must agree
// byte-for-byte (disagreement is a determinism violation that fails
// the whole sweep — a silently wrong report would be worse than no
// report), and late failures never displace a success.
func (c *Coordinator) ingest(sess *session, rec experiment.RunRecord) error {
	rr, err := experiment.ResultFromRecord(rec, c.runs)
	if err != nil {
		// The fingerprint handshake makes this unreachable for honest
		// workers; reject the session, keep the sweep.
		return err
	}
	idx := rec.Index
	c.mu.Lock()
	if prev := c.results[idx]; prev != nil {
		prevRec := prev.Record()
		if prevRec.Error == "" {
			if rec.Error == "" && !prevRec.SameOutcome(rec) {
				c.mu.Unlock()
				c.fail(fmt.Errorf("coord: run %d: worker %s delivered a successful record that disagrees with the one already recorded — determinism violation, refusing to pick one",
					idx, sess.worker))
				return nil
			}
			// Idempotent duplicate (reassignment / steal overlap) or a
			// stale failure: drop.
			c.mu.Unlock()
			return nil
		}
		if rec.Error != "" {
			// Keep the first failure.
			c.mu.Unlock()
			return nil
		}
		// Success after a recorded failure (the failed run was stolen
		// or reassigned before its failure arrived): upgrade, exactly
		// as LoadCheckpoints prefers success over a stale failure.
		c.results[idx] = rr
		if c.ckw != nil {
			c.ckw.Append(rr)
		}
		c.table.complete(idx)
		done := c.done
		c.mu.Unlock()
		c.event(Event{Kind: EventRecord, Worker: sess.worker, Index: idx, Done: done, Total: len(c.runs)})
		return nil
	}
	c.results[idx] = rr
	if c.ckw != nil {
		c.ckw.Append(rr)
	}
	c.table.complete(idx)
	c.done++
	done := c.done
	c.mu.Unlock()
	c.event(Event{Kind: EventRecord, Worker: sess.worker, Index: idx, Done: done, Total: len(c.runs)})
	if done == len(c.runs) {
		c.onceDone.Do(func() { close(c.doneCh) })
	}
	return nil
}

// completeLease retires a lease whose worker says it finished; runs
// whose records never arrived go back to the pool.
func (c *Coordinator) completeLease(sess *session, id int64) {
	c.mu.Lock()
	leftover := c.table.releaseLease(id)
	done := c.done
	c.mu.Unlock()
	if len(leftover) > 0 {
		c.event(Event{Kind: EventRequeue, Worker: sess.worker, Lease: id, Indices: leftover,
			Detail: "lease completed with unrecorded runs", Done: done, Total: len(c.runs)})
	}
}

// dropSession releases a dead session's leases and reassigns their
// unfinished runs.
func (c *Coordinator) dropSession(conn net.Conn, sess *session, reason string) {
	c.mu.Lock()
	delete(c.conns, conn)
	returned, ids := c.table.releaseSession(sess)
	done := c.done
	c.mu.Unlock()
	if sess.worker == "" {
		return // never completed the handshake
	}
	c.event(Event{Kind: EventWorkerLeave, Worker: sess.worker, Detail: reason, Done: done, Total: len(c.runs)})
	if len(returned) > 0 {
		c.event(Event{Kind: EventRequeue, Worker: sess.worker, Lease: ids[0], Indices: returned,
			Detail: reason, Done: done, Total: len(c.runs)})
	}
}
