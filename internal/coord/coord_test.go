package coord

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiment"
)

// testDesc is a small sweep (3 circuits × 2 heuristics × 2 m values =
// 12 runs) on the compact fabric, resolvable identically on both ends
// of the wire.
func testDesc() SpecDesc {
	return SpecDesc{
		Circuits:   "[[5,1,3]],[[7,1,3]],[[9,1,3]]",
		Heuristics: "quale,qspr",
		M:          "1,2",
		Seed:       1,
		Fabric:     "small",
	}
}

// fakeMapper is a pure function of the run, so coordinated report
// bytes depend only on the assignment/recovery machinery under test.
func fakeMapper(_ context.Context, r experiment.Run) (*experiment.Metrics, error) {
	return &experiment.Metrics{
		LatencyUS: int64(100*r.Index + r.Seeds),
		IdealUS:   int64(r.Index),
		Placement: []int{r.Index, r.Seeds},
	}, nil
}

// goldenBytes renders the unsharded single-process sweep in every
// format — the byte-identity reference for all coordinated runs.
func goldenBytes(t *testing.T, desc SpecDesc, fn experiment.RunFunc) (js, csv, md []byte) {
	t.Helper()
	spec, err := desc.Spec()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := experiment.Execute(context.Background(), spec, experiment.Options{RunFunc: fn})
	if err != nil {
		t.Fatal(err)
	}
	return reportBytes(t, rep)
}

func reportBytes(t *testing.T, rep *experiment.Report) (js, csv, md []byte) {
	t.Helper()
	var a, b, c bytes.Buffer
	if err := rep.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteMarkdown(&c); err != nil {
		t.Fatal(err)
	}
	return a.Bytes(), b.Bytes(), c.Bytes()
}

func assertIdentical(t *testing.T, rep *experiment.Report, wantJS, wantCSV, wantMD []byte) {
	t.Helper()
	js, csv, md := reportBytes(t, rep)
	if !bytes.Equal(js, wantJS) {
		t.Errorf("coordinated JSON differs from unsharded run:\n got: %s\nwant: %s", js, wantJS)
	}
	if !bytes.Equal(csv, wantCSV) {
		t.Error("coordinated CSV differs from unsharded run")
	}
	if !bytes.Equal(md, wantMD) {
		t.Error("coordinated markdown differs from unsharded run")
	}
}

// startCoordinator runs a coordinator in the background and returns
// it plus a wait func for its report.
func startCoordinator(t *testing.T, ctx context.Context, cfg Config) (*Coordinator, func() (*experiment.Report, error)) {
	t.Helper()
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = 2 * time.Second
	}
	if cfg.Linger == 0 {
		// Must exceed the worker's wait-poll interval (250ms), or a
		// worker sleeping through sweep completion finds the listener
		// gone instead of a done response.
		cfg.Linger = 750 * time.Millisecond
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	type out struct {
		rep *experiment.Report
		err error
	}
	ch := make(chan out, 1)
	go func() {
		rep, err := c.Run(ctx)
		ch <- out{rep, err}
	}()
	return c, func() (*experiment.Report, error) {
		select {
		case o := <-ch:
			return o.rep, o.err
		case <-time.After(60 * time.Second):
			t.Fatal("coordinator did not finish within 60s")
			return nil, nil
		}
	}
}

func testWorker(addr string) *Worker {
	return &Worker{
		Addr: addr, RunFunc: fakeMapper,
		BaseBackoff: 20 * time.Millisecond, MaxBackoff: 300 * time.Millisecond,
		MaxAttempts: 40,
	}
}

func TestCoordinatedSweepMatchesUnsharded(t *testing.T) {
	desc := testDesc()
	wantJS, wantCSV, wantMD := goldenBytes(t, desc, fakeMapper)
	ck := filepath.Join(t.TempDir(), "coord.jsonl")

	ctx := context.Background()
	c, wait := startCoordinator(t, ctx, Config{Desc: desc, ChunkSize: 3, Checkpoint: ck})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := testWorker(c.Addr())
		w.Name = fmt.Sprintf("w%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				t.Errorf("worker %s: %v", w.Name, err)
			}
		}()
	}
	rep, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	assertIdentical(t, rep, wantJS, wantCSV, wantMD)

	// The coordinator's checkpoint merges byte-identically too — it is
	// an ordinary checkpoint file.
	merged, err := experiment.LoadCheckpoints(ck)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, merged, wantJS, wantCSV, wantMD)
}

// TestCoordinatedRealSweepMatchesUnsharded drives the real mapping
// stack (no injected RunFunc) through the full wire protocol on a
// small spec.
func TestCoordinatedRealSweepMatchesUnsharded(t *testing.T) {
	if testing.Short() {
		t.Skip("real mapping sweep in -short mode")
	}
	desc := SpecDesc{Circuits: "ghz(q=4),[[5,1,3]]", Heuristics: "quale,qspr", M: "1", Seed: 1, Fabric: "small"}
	wantJS, wantCSV, wantMD := goldenBytes(t, desc, nil)

	ctx := context.Background()
	c, wait := startCoordinator(t, ctx, Config{Desc: desc, ChunkSize: 1})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := testWorker(c.Addr())
		w.RunFunc = nil // the real stack
		w.Name = fmt.Sprintf("real%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				t.Errorf("worker %s: %v", w.Name, err)
			}
		}()
	}
	rep, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	assertIdentical(t, rep, wantJS, wantCSV, wantMD)
}

// TestWorkerKilledMidShard kills a worker (in-process kill -9: the
// connection drops with no clean shutdown) after two records; the
// coordinator must requeue its unfinished leased runs and a second
// worker must complete the sweep byte-identically.
func TestWorkerKilledMidShard(t *testing.T) {
	desc := testDesc()
	wantJS, wantCSV, wantMD := goldenBytes(t, desc, fakeMapper)

	var requeued atomic.Int32
	ctx := context.Background()
	c, wait := startCoordinator(t, ctx, Config{
		Desc: desc, ChunkSize: 6, LeaseTTL: 2 * time.Second,
		OnEvent: func(ev Event) {
			if ev.Kind == EventRequeue {
				requeued.Add(int32(len(ev.Indices)))
			}
		},
	})

	var sent atomic.Int32
	killer := testWorker(c.Addr())
	killer.Name = "victim"
	killer.Chaos = func(p ChaosPoint, detail int) ChaosAction {
		if p == PointRecord && sent.Add(1) > 2 {
			return ChaosAction{Kill: true}
		}
		return ChaosAction{}
	}
	if err := killer.Run(ctx); !errors.Is(err, ErrChaosKilled) {
		t.Fatalf("killed worker returned %v, want ErrChaosKilled", err)
	}

	// The survivor finishes everything the victim left behind.
	w := testWorker(c.Addr())
	w.Name = "survivor"
	if err := w.Run(ctx); err != nil {
		t.Fatalf("survivor: %v", err)
	}
	rep, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, rep, wantJS, wantCSV, wantMD)
	if requeued.Load() == 0 {
		t.Error("no runs were requeued after the worker was killed")
	}
}

// TestHungWorkerLeaseExpiry SIGSTOP-alikes a worker: mid-lease its
// heartbeats stop and it stalls past the lease TTL. The coordinator
// must expire the session, reassign, and still produce byte-identical
// output when the worker wakes up and reconnects (its stale records
// are dropped or duplicate-checked).
func TestHungWorkerLeaseExpiry(t *testing.T) {
	desc := testDesc()
	wantJS, wantCSV, wantMD := goldenBytes(t, desc, fakeMapper)

	const ttl = 400 * time.Millisecond
	var expired atomic.Int32
	ctx := context.Background()
	c, wait := startCoordinator(t, ctx, Config{
		Desc: desc, ChunkSize: 6, LeaseTTL: ttl,
		OnEvent: func(ev Event) {
			if ev.Kind == EventWorkerLeave && strings.Contains(ev.Detail, "lease expired") {
				expired.Add(1)
			}
		},
	})

	var hung atomic.Bool
	w := testWorker(c.Addr())
	w.Name = "sleeper"
	w.Chaos = func(p ChaosPoint, detail int) ChaosAction {
		if p == PointRecord && hung.CompareAndSwap(false, true) {
			return ChaosAction{MuteHeartbeat: true, Stall: 3 * ttl}
		}
		return ChaosAction{}
	}
	if err := w.Run(ctx); err != nil {
		t.Fatalf("hung worker never recovered: %v", err)
	}
	rep, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, rep, wantJS, wantCSV, wantMD)
	if expired.Load() == 0 {
		t.Error("coordinator never expired the hung worker's session")
	}
}

// TestDuplicateRecordDelivery sends every record twice (delivery
// after reassignment); ingest must be idempotent.
func TestDuplicateRecordDelivery(t *testing.T) {
	desc := testDesc()
	wantJS, wantCSV, wantMD := goldenBytes(t, desc, fakeMapper)

	ctx := context.Background()
	c, wait := startCoordinator(t, ctx, Config{Desc: desc, ChunkSize: 4})
	w := testWorker(c.Addr())
	w.Name = "echo"
	w.Chaos = func(p ChaosPoint, detail int) ChaosAction {
		if p == PointRecord {
			return ChaosAction{Duplicate: true}
		}
		return ChaosAction{}
	}
	if err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}
	rep, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, rep, wantJS, wantCSV, wantMD)
}

// TestDroppedRecordsRequeuedOnLeaseComplete partitions away every
// record of the first lease; the worker still reports lease-complete,
// and the coordinator must trust records, not claims — the dropped
// runs go back to the pool and re-execute.
func TestDroppedRecordsRequeuedOnLeaseComplete(t *testing.T) {
	desc := testDesc()
	wantJS, wantCSV, wantMD := goldenBytes(t, desc, fakeMapper)

	ctx := context.Background()
	c, wait := startCoordinator(t, ctx, Config{Desc: desc, ChunkSize: 4})
	var first atomic.Int32
	w := testWorker(c.Addr())
	w.Name = "lossy"
	w.Chaos = func(p ChaosPoint, detail int) ChaosAction {
		if p == PointRecord && first.Add(1) <= 4 {
			return ChaosAction{Drop: true}
		}
		return ChaosAction{}
	}
	if err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}
	rep, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, rep, wantJS, wantCSV, wantMD)
}

// TestStragglerStealAndKill is the acceptance scenario: a slow worker
// holds the whole sweep in one lease; a fast worker joining later must
// steal the tail of its unfinished range, and when the straggler is
// then killed its leftovers are reassigned — merged output stays
// byte-identical in every format.
func TestStragglerStealAndKill(t *testing.T) {
	desc := testDesc()
	wantJS, wantCSV, wantMD := goldenBytes(t, desc, fakeMapper)

	grantCh := make(chan struct{}, 1)
	var stole atomic.Int32
	ctx := context.Background()
	c, wait := startCoordinator(t, ctx, Config{
		Desc: desc, ChunkSize: 12, LeaseTTL: 2 * time.Second,
		OnEvent: func(ev Event) {
			switch ev.Kind {
			case EventLeaseGrant:
				select {
				case grantCh <- struct{}{}:
				default:
				}
			case EventLeaseSteal:
				stole.Add(int32(len(ev.Indices)))
			}
		},
	})

	// The straggler takes the whole sweep and crawls; after 5 records
	// it dies outright.
	var sent atomic.Int32
	straggler := testWorker(c.Addr())
	straggler.Name = "straggler"
	straggler.Chaos = func(p ChaosPoint, detail int) ChaosAction {
		if p != PointRecord {
			return ChaosAction{}
		}
		if sent.Add(1) > 5 {
			return ChaosAction{Kill: true}
		}
		return ChaosAction{Stall: 120 * time.Millisecond}
	}
	stragglerErr := make(chan error, 1)
	go func() { stragglerErr <- straggler.Run(ctx) }()

	// Wait for the straggler to own the whole sweep, then start the
	// fast worker — the pool is empty, so its first lease must be
	// stolen.
	select {
	case <-grantCh:
	case <-time.After(10 * time.Second):
		t.Fatal("straggler never got its lease")
	}
	fast := testWorker(c.Addr())
	fast.Name = "fast"
	if err := fast.Run(ctx); err != nil {
		t.Fatalf("fast worker: %v", err)
	}
	if err := <-stragglerErr; !errors.Is(err, ErrChaosKilled) {
		t.Fatalf("straggler returned %v, want ErrChaosKilled", err)
	}
	rep, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, rep, wantJS, wantCSV, wantMD)
	if stole.Load() == 0 {
		t.Error("fast worker never stole from the straggler")
	}
}

// TestCoordinatorRestart cancels the coordinator mid-sweep and starts
// a replacement on the same checkpoint file and address; workers ride
// out the outage on reconnect backoff and the final report is
// byte-identical, with the first half served from the checkpoint.
func TestCoordinatorRestart(t *testing.T) {
	desc := testDesc()
	wantJS, wantCSV, wantMD := goldenBytes(t, desc, fakeMapper)
	ck := filepath.Join(t.TempDir(), "coord.jsonl")

	ctx1, cancel1 := context.WithCancel(context.Background())
	var recs atomic.Int32
	c1, wait1 := startCoordinator(t, ctx1, Config{
		Desc: desc, ChunkSize: 2, Checkpoint: ck,
		OnEvent: func(ev Event) {
			if ev.Kind == EventRecord && recs.Add(1) == 5 {
				cancel1()
			}
		},
	})
	addr := c1.Addr()

	// Slow the worker slightly so the cancellation lands mid-sweep.
	w := testWorker(addr)
	w.Name = "rider"
	w.MaxAttempts = 60
	w.Chaos = func(p ChaosPoint, detail int) ChaosAction {
		if p == PointRecord {
			return ChaosAction{Stall: 20 * time.Millisecond}
		}
		return ChaosAction{}
	}
	workerErr := make(chan error, 1)
	go func() { workerErr <- w.Run(context.Background()) }()

	if _, err := wait1(); !errors.Is(err, context.Canceled) {
		t.Fatalf("first coordinator exited with %v, want context.Canceled", err)
	}
	if got := int(recs.Load()); got < 5 {
		t.Fatalf("first coordinator recorded %d runs before restart, want >= 5", got)
	}

	// The replacement resumes from the checkpoint on the same address.
	c2, wait2 := startCoordinator(t, context.Background(), Config{
		Desc: desc, ChunkSize: 2, Checkpoint: ck, Addr: addr,
	})
	if c2.Resumed() == 0 {
		t.Error("restarted coordinator resumed nothing from its checkpoint")
	}
	if err := <-workerErr; err != nil {
		t.Fatalf("worker did not survive the coordinator restart: %v", err)
	}
	rep, err := wait2()
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, rep, wantJS, wantCSV, wantMD)
}

// TestDeterminismViolationFailsSweep: when a steal makes two workers
// execute one run and their successful records disagree, the
// coordinator must fail the sweep loudly instead of picking one.
func TestDeterminismViolationFailsSweep(t *testing.T) {
	desc := testDesc()
	grantCh := make(chan struct{}, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c, wait := startCoordinator(t, ctx, Config{
		Desc: desc, ChunkSize: 12, LeaseTTL: 2 * time.Second,
		OnEvent: func(ev Event) {
			if ev.Kind == EventLeaseGrant {
				select {
				case grantCh <- struct{}{}:
				default:
				}
			}
		},
	})

	biased := func(delta int64) experiment.RunFunc {
		return func(_ context.Context, r experiment.Run) (*experiment.Metrics, error) {
			return &experiment.Metrics{LatencyUS: int64(r.Index) + delta, Placement: []int{r.Index}}, nil
		}
	}
	slow := testWorker(c.Addr())
	slow.Name = "slow"
	slow.RunFunc = biased(0)
	slow.Chaos = func(p ChaosPoint, detail int) ChaosAction {
		if p == PointRecord {
			return ChaosAction{Stall: 80 * time.Millisecond}
		}
		return ChaosAction{}
	}
	slowErr := make(chan error, 1)
	go func() { slowErr <- slow.Run(ctx) }()
	select {
	case <-grantCh:
	case <-time.After(10 * time.Second):
		t.Fatal("slow worker never got its lease")
	}

	divergent := testWorker(c.Addr())
	divergent.Name = "divergent"
	divergent.RunFunc = biased(1000)
	divergentErr := make(chan error, 1)
	go func() { divergentErr <- divergent.Run(ctx) }()

	_, err := wait()
	if err == nil || !strings.Contains(err.Error(), "determinism violation") {
		t.Fatalf("coordinator returned %v, want a determinism violation error", err)
	}
	cancel()
	<-slowErr
	<-divergentErr
}

// TestFingerprintMismatchRejected: a qasm(path=...) circuit whose
// file differs between the coordinator's machine and the worker's
// resolves to a different content-addressed name, so the worker must
// refuse the sweep at handshake instead of mixing results.
func TestFingerprintMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.qasm")
	prog := "QUBIT q0\nQUBIT q1\nCNOT q0, q1\n"
	if err := os.WriteFile(path, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	desc := SpecDesc{
		Circuits:   fmt.Sprintf("qasm(path=%s)", path),
		Heuristics: "quale", M: "1", Seed: 1, Fabric: "small",
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c, wait := startCoordinator(t, ctx, Config{Desc: desc})

	// The worker's copy of the file drifts before it connects.
	if err := os.WriteFile(path, []byte("QUBIT q0\nQUBIT q1\nH q0\nCNOT q0, q1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	w := testWorker(c.Addr())
	w.Name = "drifted"
	err := w.Run(ctx)
	if err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("worker returned %v, want a fingerprint mismatch", err)
	}
	cancel()
	if _, err := wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("coordinator exited with %v, want context.Canceled", err)
	}
}

// Unit coverage for the lease table's steal rules.
func TestLeaseTableSteal(t *testing.T) {
	a, b := &session{worker: "a"}, &session{worker: "b"}
	tb := newTable([]int{0, 1, 2, 3, 4, 5, 6, 7})
	la := tb.grant(a, "a", 8)
	if la == nil || len(la.remaining) != 8 {
		t.Fatalf("grant = %+v, want all 8", la)
	}
	if l := tb.grant(b, "b", 8); l != nil {
		t.Fatalf("second grant got %v, want nil (pool empty)", l.remaining)
	}
	// b steals the tail half.
	nl, victim := tb.steal(b, "b", 8)
	if nl == nil || victim != la {
		t.Fatalf("steal = %v victim %v", nl, victim)
	}
	got := nl.sortedRemaining()
	want := []int{4, 5, 6, 7}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("stolen tail = %v, want %v", got, want)
	}
	if len(la.remaining) != 4 {
		t.Errorf("victim keeps %d, want 4", len(la.remaining))
	}
	// With b's lease drained, the only candidate left is a's own —
	// never stolen from.
	for _, idx := range []int{4, 5, 6, 7} {
		tb.complete(idx)
	}
	if nl, _ := tb.steal(a, "a", 8); nl != nil {
		t.Errorf("a stole %v from its own lease", nl.sortedRemaining())
	}
	// A lease down to a single unfinished run is not splittable.
	for _, idx := range []int{0, 1, 2} {
		tb.complete(idx)
	}
	if nl, _ := tb.steal(b, "b", 8); nl != nil {
		t.Errorf("stole single-run lease %v", nl.sortedRemaining())
	}
}

// TestWorkerGivesUpWithoutCoordinator pins the reconnect budget: with
// no coordinator listening the worker must fail after its attempts,
// not spin forever.
func TestWorkerGivesUpWithoutCoordinator(t *testing.T) {
	w := &Worker{
		Addr:        "127.0.0.1:1", // reserved port, nothing listens
		BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
		MaxAttempts: 3,
	}
	err := w.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("worker returned %v, want giving-up error", err)
	}
}
