package coord

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiment"
)

// errDone signals a clean sweep-complete exit from a session.
var errDone = errors.New("coord: sweep done")

// permanentError marks failures no amount of reconnecting fixes — a
// spec the worker cannot resolve, a fingerprint mismatch, a protocol
// rejection.
type permanentError struct{ err error }

func (e permanentError) Error() string { return e.err.Error() }
func (e permanentError) Unwrap() error { return e.err }

// Worker is the qsprbench -worker client: it connects to a
// coordinator, resolves and fingerprint-checks the sweep spec, then
// loops requesting leases and executing them through
// experiment.Execute restricted to the leased index set, streaming
// one record per completed run and heartbeating at a third of the
// lease TTL. A lost connection aborts the lease in flight (the
// coordinator reassigns whatever it did not receive) and the worker
// reconnects with jittered exponential backoff.
type Worker struct {
	// Addr is the coordinator's host:port.
	Addr string
	// Name labels this worker in coordinator logs; default
	// "<hostname>:<pid>".
	Name string
	// Parallel is this machine's CPU budget for lease execution
	// (experiment.Options.Workers); 0 = all cores.
	Parallel int
	// RunFunc overrides the per-run mapper (nil = the real stack);
	// tests inject deterministic fakes and failures here.
	RunFunc experiment.RunFunc
	// Chaos, if non-nil, is the fault-injection hook (tests only).
	Chaos ChaosFunc
	// MaxAttempts is the consecutive-failure budget before Run gives
	// up (default 8). Each failed connect or broken session counts;
	// any granted lease response resets it.
	MaxAttempts int
	// BaseBackoff and MaxBackoff shape the reconnect delay: base×2^n
	// capped at max, each delay jittered ±50% so a fleet of workers
	// whose coordinator restarts does not reconnect in lockstep.
	// Defaults 100ms and 3s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Logf, if non-nil, receives worker progress lines.
	Logf func(format string, args ...any)

	rngOnce sync.Once
	rng     *rand.Rand
	rngMu   sync.Mutex
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

func (w *Worker) name() string {
	if w.Name != "" {
		return w.Name
	}
	host, err := os.Hostname()
	if err != nil {
		host = "worker"
	}
	return fmt.Sprintf("%s:%d", host, os.Getpid())
}

// backoff returns the jittered delay before reconnect attempt n
// (1-based).
func (w *Worker) backoff(n int) time.Duration {
	base := w.BaseBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := w.MaxBackoff
	if max <= 0 {
		max = 3 * time.Second
	}
	d := base
	for i := 1; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	w.rngOnce.Do(func() { w.rng = rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(os.Getpid()))) })
	w.rngMu.Lock()
	jitter := 0.5 + w.rng.Float64() // [0.5, 1.5)
	w.rngMu.Unlock()
	return time.Duration(float64(d) * jitter)
}

// Run connects and serves leases until the coordinator reports the
// sweep done (nil), the context is canceled, the failure budget is
// exhausted, or a permanent error (unresolvable or mismatched spec)
// occurs.
func (w *Worker) Run(ctx context.Context) error {
	attempts := 0
	fail := func(err error) (bool, error) {
		attempts++
		max := w.MaxAttempts
		if max <= 0 {
			max = 8
		}
		if attempts >= max {
			return true, fmt.Errorf("coord: worker giving up after %d attempts: %w", attempts, err)
		}
		select {
		case <-ctx.Done():
			return true, ctx.Err()
		case <-time.After(w.backoff(attempts)):
		}
		return false, nil
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		d := net.Dialer{Timeout: 5 * time.Second}
		conn, err := d.DialContext(ctx, "tcp", w.Addr)
		if err != nil {
			w.logf("connect %s: %v", w.Addr, err)
			if stop, ferr := fail(err); stop {
				return ferr
			}
			continue
		}
		err = w.session(ctx, newWire(conn), &attempts)
		conn.Close()
		switch {
		case errors.Is(err, errDone):
			return nil
		case errors.Is(err, ErrChaosKilled):
			return err
		case ctx.Err() != nil:
			return ctx.Err()
		}
		var perm permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		w.logf("session ended: %v", err)
		if stop, ferr := fail(err); stop {
			return ferr
		}
	}
}

// session runs one connection: handshake, then the lease loop.
// attempts is reset whenever a lease is granted, so a long healthy
// session never inches toward the failure budget.
func (w *Worker) session(ctx context.Context, wr *wire, attempts *int) error {
	if err := wr.send(message{Type: msgHello, Worker: w.name(), Proto: ProtoVersion}); err != nil {
		return err
	}
	m, err := wr.recv(time.Now().Add(10 * time.Second))
	if err != nil {
		return err
	}
	switch m.Type {
	case msgSpec:
	case msgError:
		return permanentError{errors.New(m.Error)}
	default:
		return fmt.Errorf("coord: unexpected handshake response %q", m.Type)
	}
	if m.Spec == nil {
		return permanentError{errors.New("coord: spec message without a spec")}
	}
	spec, err := m.Spec.Spec()
	if err != nil {
		return permanentError{fmt.Errorf("coord: resolving coordinator spec: %w", err)}
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		return permanentError{err}
	}
	if fp != m.Fingerprint {
		return permanentError{fmt.Errorf("coord: spec fingerprint mismatch (worker %s, coordinator %s): the two machines resolve the sweep differently — check circuit/fabric files", fp, m.Fingerprint)}
	}
	runs, err := spec.Runs()
	if err != nil {
		return permanentError{err}
	}
	if len(runs) != m.Runs {
		return permanentError{fmt.Errorf("coord: spec expands to %d runs here but %d at the coordinator", len(runs), m.Runs)}
	}
	ttl := time.Duration(m.LeaseTTLMS) * time.Millisecond
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	w.logf("connected to %s: %d runs, lease TTL %v", w.Addr, m.Runs, ttl)

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := wr.send(message{Type: msgLeaseRequest}); err != nil {
			return err
		}
		m, err := wr.recv(time.Now().Add(ttl + 5*time.Second))
		if err != nil {
			return err
		}
		switch m.Type {
		case msgDone:
			w.logf("sweep done")
			return errDone
		case msgWait:
			// Nothing assignable right now (stragglers hold lone
			// runs); poll again well inside the TTL so the session
			// never looks dead.
			wait := ttl / 4
			if wait > 250*time.Millisecond {
				wait = 250 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
		case msgLease:
			*attempts = 0
			if err := w.execLease(ctx, wr, spec, ttl, m); err != nil {
				return err
			}
		case msgError:
			return permanentError{errors.New(m.Error)}
		default:
			return fmt.Errorf("coord: unexpected lease response %q", m.Type)
		}
	}
}

// execLease executes one lease: experiment.Execute restricted to the
// leased index set, records streamed as runs complete, heartbeats at
// TTL/3 from a side goroutine. Any send failure cancels the execution
// context so the pool winds down between runs.
func (w *Worker) execLease(ctx context.Context, wr *wire, spec experiment.Spec, ttl time.Duration, m message) error {
	w.logf("lease %d: %d runs", m.Lease, len(m.Indices))
	if w.Chaos != nil {
		act := w.Chaos(PointLease, len(m.Indices))
		if err := w.applyPreSend(ctx, wr, act); err != nil {
			return err
		}
	}

	execCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var errMu sync.Mutex
	var sendErr error
	var killed, muted atomic.Bool
	abort := func(err error) {
		if err != nil {
			errMu.Lock()
			if sendErr == nil {
				sendErr = err
			}
			errMu.Unlock()
		}
		cancel()
	}

	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		tick := time.NewTicker(ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-execCtx.Done():
				return
			case <-tick.C:
				if muted.Load() {
					continue
				}
				if err := wr.send(message{Type: msgHeartbeat, Lease: m.Lease}); err != nil {
					abort(err)
					return
				}
			}
		}
	}()

	opts := experiment.Options{
		Workers: w.Parallel,
		Indices: m.Indices,
		RunFunc: w.RunFunc,
		OnResult: func(rr experiment.RunResult) {
			if execCtx.Err() != nil {
				return
			}
			var act ChaosAction
			if w.Chaos != nil {
				act = w.Chaos(PointRecord, rr.Index)
			}
			if act.MuteHeartbeat {
				muted.Store(true)
			}
			if act.Stall > 0 {
				select {
				case <-time.After(act.Stall):
				case <-ctx.Done():
				}
			}
			if act.Kill {
				killed.Store(true)
				cancel()
				return
			}
			if act.Drop {
				return
			}
			rec := rr.Record()
			msg := message{Type: msgRecord, Lease: m.Lease, Record: &rec}
			if err := wr.send(msg); err != nil {
				abort(err)
				return
			}
			if act.Duplicate {
				if err := wr.send(msg); err != nil {
					abort(err)
				}
			}
		},
	}
	_, execErr := experiment.Execute(execCtx, spec, opts)
	cancel()
	hb.Wait()

	if killed.Load() {
		// Simulated kill -9: drop the connection without ceremony.
		wr.close()
		return ErrChaosKilled
	}
	errMu.Lock()
	err := sendErr
	errMu.Unlock()
	if err != nil {
		return err
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if execErr != nil && execCtx.Err() == nil {
		// A genuine Execute failure (not our own cancellation):
		// surface it — the lease's unfinished runs will be
		// reassigned when the coordinator notices.
		return execErr
	}
	return wr.send(message{Type: msgLeaseComplete, Lease: m.Lease})
}

// applyPreSend handles a chaos action fired outside the record path.
func (w *Worker) applyPreSend(ctx context.Context, wr *wire, act ChaosAction) error {
	if act.Stall > 0 {
		select {
		case <-time.After(act.Stall):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if act.Kill {
		wr.close()
		return ErrChaosKilled
	}
	return nil
}
