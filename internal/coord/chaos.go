package coord

import (
	"errors"
	"time"
)

// The chaos hook is the package's fault-injection harness: tests (and
// only tests) install a ChaosFunc on a Worker to kill, stall, mute or
// partition it at precise protocol points, then assert that the
// coordinator's merged report stays byte-identical to an unsharded
// run. Production code paths never consult the hook when it is nil.

// ChaosPoint names a place in the worker's lifecycle where the hook
// fires.
type ChaosPoint string

const (
	// PointRecord fires before each completed run's record is sent;
	// detail is the run index.
	PointRecord ChaosPoint = "record"
	// PointLease fires after a lease is received, before any run
	// executes; detail is the number of leased indices.
	PointLease ChaosPoint = "lease"
)

// ChaosAction is what the hook asks the worker to do at a point.
// Fields compose: Stall then Kill simulates a worker that freezes and
// is later lost; MuteHeartbeat with a long Stall simulates a hung
// (SIGSTOP-like) process whose lease must expire.
type ChaosAction struct {
	// Kill aborts the worker abruptly: the connection drops without a
	// clean shutdown and Worker.Run returns ErrChaosKilled — the
	// in-process equivalent of kill -9.
	Kill bool
	// Stall sleeps before proceeding (a straggling worker; its
	// heartbeats keep flowing unless muted).
	Stall time.Duration
	// MuteHeartbeat stops the session's heartbeats from this point on,
	// so the coordinator's lease deadline lapses even though the
	// process is alive — a hung or partitioned worker.
	MuteHeartbeat bool
	// Drop swallows this record instead of sending it (a lost packet /
	// partition): the coordinator must re-assign the run when the
	// lease completes or expires without it.
	Drop bool
	// Duplicate sends this record twice (delivery after reassignment):
	// the coordinator must treat the copy as idempotent.
	Duplicate bool
}

// ChaosFunc decides the action at a chaos point. A nil hook and a
// zero action both mean "proceed normally".
type ChaosFunc func(point ChaosPoint, detail int) ChaosAction

// ErrChaosKilled is returned by Worker.Run when a chaos hook killed
// the worker, so tests distinguish an injected crash from a real one.
var ErrChaosKilled = errors.New("coord: worker killed by chaos hook")
