// Package coord turns the manual shard/checkpoint/merge primitives of
// internal/experiment into a fault-tolerant distributed sweep: one
// coordinator process owns a sweep spec and hands out dynamic shard
// leases — arbitrary run-index sets — to worker processes over plain
// TCP, detects dead and hung workers, reassigns their unfinished
// runs, and steals the tails of stragglers.
//
// The entire correctness story is the PR 5 invariant: every run's
// metrics are a deterministic function of the run's identity, so a
// run may be executed once, twice, or by three different machines and
// the record that reaches the report is byte-identical in every case.
// Reassignment, work stealing and duplicate delivery therefore never
// need distributed consensus — the coordinator keeps the first record
// per run, verifies that any duplicate agrees byte-for-byte (a
// disagreement is a determinism violation and fails the sweep loudly),
// and the final merged report is byte-identical to an unsharded
// single-process Execute. See docs/ARCHITECTURE.md ("distributed
// sweeps") and docs/CONCURRENCY.md for the full argument.
//
// Wire protocol: newline-delimited JSON messages over one TCP
// connection per worker session.
//
//	worker → hello{worker, proto}
//	coord  → spec{spec, fingerprint, runs, lease_ttl_ms}
//	worker → lease-request
//	coord  → lease{lease, indices} | wait | done | error{error}
//	worker → record{lease, record}     (one per completed run)
//	worker → heartbeat{lease}
//	worker → lease-complete{lease}
//
// Records and heartbeats are fire-and-forget; only hello and
// lease-request have responses. Any message renews the session's
// lease deadline (the coordinator's read deadline), so a worker that
// falls silent for a full lease TTL — hung, partitioned, or dead —
// expires and its unfinished indices return to the pending pool.
package coord

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/experiment"
	"repro/internal/noise"
)

// ProtoVersion is bumped on incompatible wire changes; a mismatched
// worker is rejected at hello rather than misbehaving mid-sweep.
const ProtoVersion = 1

// Message types.
const (
	msgHello         = "hello"
	msgSpec          = "spec"
	msgLeaseRequest  = "lease-request"
	msgLease         = "lease"
	msgWait          = "wait"
	msgDone          = "done"
	msgRecord        = "record"
	msgHeartbeat     = "heartbeat"
	msgLeaseComplete = "lease-complete"
	msgError         = "error"
)

// SpecDesc is the serializable description of a sweep spec: the same
// source strings the qsprbench CLI accepts, resolved independently by
// the coordinator and by every worker. Agreement is proven by
// comparing experiment.Spec.Fingerprint over the expanded run list —
// circuit names are canonical content-addressed registry names, so a
// qasm(path=...) source whose file differs between machines fails the
// handshake instead of corrupting the sweep.
type SpecDesc struct {
	// Circuits is the -circuits source list (experiment.SelectCircuits).
	Circuits string `json:"circuits"`
	// Heuristics is the -heuristics list (experiment.ParseHeuristics).
	Heuristics string `json:"heuristics"`
	// M is the -m seed-count list (experiment.ParseSeedCounts).
	M string `json:"m"`
	// Seed is the sweep RNG seed.
	Seed int64 `json:"seed"`
	// Fabric is a built-in fabric name or a fabric file path present
	// on every machine (experiment.LoadFabric).
	Fabric string `json:"fabric"`
	// InnerParallel is the per-mapping worker count (never changes
	// result bytes).
	InnerParallel int `json:"inner_parallel,omitempty"`
	// AnnealMoves, AnnealRestarts and AnnealCooling are the annealing
	// placer knobs (experiment.Spec); omitted when zero so pre-anneal
	// coordinator/worker pairs keep their wire format.
	AnnealMoves    int     `json:"anneal_moves,omitempty"`
	AnnealRestarts int     `json:"anneal_restarts,omitempty"`
	AnnealCooling  float64 `json:"anneal_cooling,omitempty"`
	// Backends is the -backend list (experiment.ParseBackends); empty
	// means the ion default. Both sides resolve it independently and
	// the fingerprint handshake proves they agree, exactly like the
	// other source strings.
	Backends string `json:"backends,omitempty"`
	// Noise is the -noise spec (noise.Parse); empty means unscored.
	Noise string `json:"noise,omitempty"`
}

// Spec resolves the description into an executable sweep spec.
func (d SpecDesc) Spec() (experiment.Spec, error) {
	spec := experiment.Spec{
		Seed: d.Seed, InnerParallel: d.InnerParallel,
		AnnealMoves: d.AnnealMoves, AnnealRestarts: d.AnnealRestarts,
		AnnealCooling: d.AnnealCooling,
	}
	var err error
	if spec.Circuits, err = experiment.SelectCircuits(d.Circuits); err != nil {
		return experiment.Spec{}, err
	}
	if spec.Heuristics, err = experiment.ParseHeuristics(d.Heuristics); err != nil {
		return experiment.Spec{}, err
	}
	if spec.SeedCounts, err = experiment.ParseSeedCounts(d.M); err != nil {
		return experiment.Spec{}, err
	}
	if d.Backends != "" {
		if spec.Backends, err = experiment.ParseBackends(d.Backends); err != nil {
			return experiment.Spec{}, err
		}
	}
	if d.Noise != "" {
		p, err := noise.Parse(d.Noise)
		if err != nil {
			return experiment.Spec{}, err
		}
		spec.Noise = &p
	}
	fc, err := experiment.LoadFabric(d.Fabric)
	if err != nil {
		return experiment.Spec{}, err
	}
	spec.Fabrics = []experiment.FabricChoice{fc}
	return spec, nil
}

// message is the single wire envelope; Type selects which fields are
// meaningful.
type message struct {
	Type   string `json:"type"`
	Worker string `json:"worker,omitempty"`
	Proto  int    `json:"proto,omitempty"`

	Spec        *SpecDesc `json:"spec,omitempty"`
	Fingerprint string    `json:"fingerprint,omitempty"`
	Runs        int       `json:"runs,omitempty"`
	LeaseTTLMS  int64     `json:"lease_ttl_ms,omitempty"`

	// Lease ids start at 1 so omitempty never swallows one.
	Lease   int64 `json:"lease,omitempty"`
	Indices []int `json:"indices,omitempty"`

	Record *experiment.RunRecord `json:"record,omitempty"`
	Error  string                `json:"error,omitempty"`
}

// maxLine bounds one wire message; a RunRecord with a big placement
// vector fits in a fraction of this.
const maxLine = 1 << 24

// wire frames newline-delimited JSON messages over a net.Conn. Writes
// are mutex-serialized: a worker's heartbeat goroutine and its
// record-sending result callback share one connection.
type wire struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
}

func newWire(conn net.Conn) *wire {
	return &wire{conn: conn, r: bufio.NewReaderSize(conn, 64*1024)}
}

func (w *wire) send(m message) error {
	b, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("coord: encode %s: %w", m.Type, err)
	}
	b = append(b, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	_, err = w.conn.Write(b)
	return err
}

// recv reads one message, failing after deadline (zero = no deadline).
func (w *wire) recv(deadline time.Time) (message, error) {
	if err := w.conn.SetReadDeadline(deadline); err != nil {
		return message{}, err
	}
	var line []byte
	for {
		frag, err := w.r.ReadSlice('\n')
		line = append(line, frag...)
		if err == nil {
			break
		}
		if err != bufio.ErrBufferFull {
			return message{}, err
		}
		if len(line) > maxLine {
			return message{}, fmt.Errorf("coord: wire message over %d bytes", maxLine)
		}
	}
	var m message
	if err := json.Unmarshal(line, &m); err != nil {
		return message{}, fmt.Errorf("coord: decode wire message: %w", err)
	}
	return m, nil
}

func (w *wire) close() error { return w.conn.Close() }
