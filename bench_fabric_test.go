package repro

import (
	"math/rand"
	"testing"

	"repro/internal/fabric"
	"repro/internal/gates"
	"repro/internal/routegraph"
)

// BenchmarkRouteScale measures per-route cost on the generated
// giant-fabric ladder (≈1k, 10k and 100k traps), with the ALT
// goal-directed searcher against the plain Dijkstra reference. One
// standing occupancy defeats the route cache, so every iteration is
// a full search over seeded random trap pairs. Regenerate the
// numbers tracked in BENCH_fabric.json with scripts/bench_fabric.sh.
func BenchmarkRouteScale(b *testing.B) {
	ladder := []struct{ name, spec string }{
		{"grid1k", "grid(rows=89,cols=89,pitch=4)"},     // 968 traps
		{"grid10k", "grid(rows=283,cols=283,pitch=4)"},  // 9800 traps
		{"grid100k", "grid(rows=893,cols=893,pitch=4)"}, // 99458 traps
	}
	modes := []struct {
		name      string
		landmarks int
	}{
		{"alt", 16},      // forced: grid1k sits below the auto threshold
		{"dijkstra", -1}, // reference oracle path at any size
	}
	for _, rung := range ladder {
		f, _, err := fabric.Resolve(rung.spec)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(rung.name, func(b *testing.B) {
			for _, mode := range modes {
				b.Run(mode.name, func(b *testing.B) {
					g := routegraph.New(f, gates.Default(), routegraph.Options{
						TurnAware: true, Landmarks: mode.landmarks,
					})
					// Standing occupancy: totalOcc > 0 disables the
					// route cache, making every iteration a cold search.
					g.Occupy(0)
					n := len(f.Traps)
					rng := rand.New(rand.NewSource(4585))
					pairs := make([][2]int, 256)
					for i := range pairs {
						a, c := rng.Intn(n), rng.Intn(n)
						for c == a {
							c = rng.Intn(n)
						}
						pairs[i] = [2]int{a, c}
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						p := pairs[i%len(pairs)]
						if _, ok := g.FindRoute(p[0], p[1]); !ok {
							b.Fatalf("no route %d->%d", p[0], p[1])
						}
					}
				})
			}
		})
	}
}
