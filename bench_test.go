// Package repro holds the top-level benchmark harness: one benchmark
// family per table/figure of the QSPR paper (DATE 2012). Each bench
// reports the reproduced execution latency as a custom metric
// (latency_µs) next to the usual ns/op, so `go test -bench .`
// regenerates the paper's numbers; `cmd/tables` prints the same data
// as formatted tables with the published values alongside.
//
// Benchmarks use modest MVFB seed counts to keep `go test -bench .`
// minutes-scale; run `cmd/tables` (m=25/100) for the full protocol.
package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/gates"
	"repro/internal/pathfinder"
	"repro/internal/place"
	"repro/internal/qasm"
	"repro/internal/qasmgen"
	"repro/internal/qidg"
	"repro/internal/routegraph"
	"repro/internal/sched"
)

var benchFabric = fabric.Quale4585()

// benchSeeds keeps the per-circuit MVFB effort bounded in benches.
func benchSeeds(name string) int {
	switch name {
	case "[[5,1,3]]", "[[7,1,3]]", "[[9,1,3]]":
		return 10
	default:
		return 3
	}
}

// BenchmarkTable2_Baseline reproduces Table 2's ideal lower bound:
// the gate-delay critical path of each benchmark circuit.
func BenchmarkTable2_Baseline(b *testing.B) {
	for _, bench := range circuits.All() {
		b.Run(bench.Name, func(b *testing.B) {
			var latency gates.Time
			for i := 0; i < b.N; i++ {
				l, err := core.IdealLatency(bench.Program, gates.Default())
				if err != nil {
					b.Fatal(err)
				}
				latency = l
			}
			b.ReportMetric(float64(latency), "latency_µs")
		})
	}
}

// BenchmarkTable2_QUALE reproduces Table 2's QUALE column.
func BenchmarkTable2_QUALE(b *testing.B) {
	for _, bench := range circuits.All() {
		b.Run(bench.Name, func(b *testing.B) {
			var latency gates.Time
			for i := 0; i < b.N; i++ {
				res, err := core.Map(bench.Program, benchFabric, core.Options{Heuristic: core.QUALE})
				if err != nil {
					b.Fatal(err)
				}
				latency = res.Latency
			}
			b.ReportMetric(float64(latency), "latency_µs")
		})
	}
}

// BenchmarkTable2_QSPR reproduces Table 2's QSPR column.
func BenchmarkTable2_QSPR(b *testing.B) {
	for _, bench := range circuits.All() {
		b.Run(bench.Name, func(b *testing.B) {
			var latency gates.Time
			for i := 0; i < b.N; i++ {
				res, err := core.Map(bench.Program, benchFabric,
					core.Options{Heuristic: core.QSPR, Seeds: benchSeeds(bench.Name)})
				if err != nil {
					b.Fatal(err)
				}
				latency = res.Latency
			}
			b.ReportMetric(float64(latency), "latency_µs")
		})
	}
}

// BenchmarkTable1_MVFB reproduces Table 1's MVFB rows (latency and
// CPU runtime per circuit); runs_total reports the realized number
// of placement runs.
func BenchmarkTable1_MVFB(b *testing.B) {
	for _, bench := range circuits.All() {
		b.Run(bench.Name, func(b *testing.B) {
			var latency gates.Time
			runs := 0
			for i := 0; i < b.N; i++ {
				res, err := core.Map(bench.Program, benchFabric,
					core.Options{Heuristic: core.QSPR, Seeds: benchSeeds(bench.Name)})
				if err != nil {
					b.Fatal(err)
				}
				latency = res.Latency
				runs = res.Runs
			}
			b.ReportMetric(float64(latency), "latency_µs")
			b.ReportMetric(float64(runs), "runs")
		})
	}
}

// BenchmarkTable1_MC reproduces Table 1's Monte-Carlo rows under the
// paper's protocol: MC receives twice the number of MVFB iterations
// (forward+backward pairs), i.e. the same number of placement runs
// the MVFB search performed on the same circuit.
func BenchmarkTable1_MC(b *testing.B) {
	for _, bench := range circuits.All() {
		// Fix the run budget once per circuit, outside timing.
		mvfb, err := core.Map(bench.Program, benchFabric,
			core.Options{Heuristic: core.QSPR, Seeds: benchSeeds(bench.Name)})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(bench.Name, func(b *testing.B) {
			var latency gates.Time
			for i := 0; i < b.N; i++ {
				res, err := core.MonteCarloRuns(bench.Program, benchFabric, mvfb.Runs, 1, nil)
				if err != nil {
					b.Fatal(err)
				}
				latency = res.Latency
			}
			b.ReportMetric(float64(latency), "latency_µs")
			b.ReportMetric(float64(mvfb.Runs), "runs")
		})
	}
}

// BenchmarkMVFB_InnerParallel measures intra-mapping scaling: one
// QSPR mapping with the MVFB starts fanned across 1, 2 and 4 workers.
// The latency and runs metrics must not move with the worker count —
// only ns/op may (tracked in BENCH_placement.json; on an N-core
// machine the speedup is bounded by min(N, m) and by the speculative
// runs the global-patience replay discards).
func BenchmarkMVFB_InnerParallel(b *testing.B) {
	for _, bench := range []string{"[[5,1,3]]", "[[7,1,3]]"} {
		c, err := circuits.ByName(bench)
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", bench, workers), func(b *testing.B) {
				var latency gates.Time
				runs := 0
				for i := 0; i < b.N; i++ {
					res, err := core.Map(c.Program, benchFabric, core.Options{
						Heuristic: core.QSPR, Seeds: 10, InnerParallel: workers,
					})
					if err != nil {
						b.Fatal(err)
					}
					latency = res.Latency
					runs = res.Runs
				}
				b.ReportMetric(float64(latency), "latency_µs")
				b.ReportMetric(float64(runs), "runs")
			})
		}
	}
}

// BenchmarkPortfolio races MVFB, Monte-Carlo and Center concurrently
// on one mapping (heuristic "portfolio") at the full CPU budget.
func BenchmarkPortfolio(b *testing.B) {
	c, err := circuits.ByName("[[9,1,3]]")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("[[9,1,3]]", func(b *testing.B) {
		var latency gates.Time
		for i := 0; i < b.N; i++ {
			res, err := core.Map(c.Program, benchFabric, core.Options{
				Heuristic: core.Portfolio, Seeds: 5, InnerParallel: 4,
			})
			if err != nil {
				b.Fatal(err)
			}
			latency = res.Latency
		}
		b.ReportMetric(float64(latency), "latency_µs")
	})
}

// BenchmarkMSweep reproduces the §IV.A sensitivity analysis: MVFB
// solution quality as a function of the number of random seeds m.
func BenchmarkMSweep(b *testing.B) {
	bench, err := circuits.ByName("[[9,1,3]]")
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []int{1, 2, 5, 10, 25} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			var latency gates.Time
			for i := 0; i < b.N; i++ {
				res, err := core.Map(bench.Program, benchFabric,
					core.Options{Heuristic: core.QSPR, Seeds: m})
				if err != nil {
					b.Fatal(err)
				}
				latency = res.Latency
			}
			b.ReportMetric(float64(latency), "latency_µs")
		})
	}
}

// BenchmarkFig5_Routing reproduces the Fig. 5 comparison as a router
// microbenchmark: shortest-path queries on the turn-aware vs
// turn-blind graph, reporting the realized travel time.
func BenchmarkFig5_Routing(b *testing.B) {
	tech := gates.Default()
	for _, mode := range []struct {
		name  string
		aware bool
	}{{"turn-aware", true}, {"turn-blind", false}} {
		b.Run(mode.name, func(b *testing.B) {
			g := routegraph.New(benchFabric, tech, routegraph.Options{TurnAware: mode.aware})
			a := benchFabric.TrapsByDistance(fabric.Pos{Row: 0, Col: 0})[0]
			z := benchFabric.TrapsByDistance(fabric.Pos{Row: 44, Col: 84})[0]
			var travel gates.Time
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, ok := g.FindRoute(a, z)
				if !ok {
					b.Fatal("no route")
				}
				travel = r.Delay
			}
			b.ReportMetric(float64(travel), "travel_µs")
		})
	}
}

// BenchmarkFig5_RoutingCold is BenchmarkFig5_Routing with the route
// cache defeated: one junction group is kept occupied, so every
// iteration runs a full congested Dijkstra on the reusable search
// state. This isolates the raw search-core speed from cache replay.
func BenchmarkFig5_RoutingCold(b *testing.B) {
	tech := gates.Default()
	g := routegraph.New(benchFabric, tech, routegraph.Options{TurnAware: true})
	g.Occupy(g.JunctionGroupID(0))
	a := benchFabric.TrapsByDistance(fabric.Pos{Row: 0, Col: 0})[0]
	z := benchFabric.TrapsByDistance(fabric.Pos{Row: 44, Col: 84})[0]
	var travel gates.Time
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, ok := g.FindRoute(a, z)
		if !ok {
			b.Fatal("no route")
		}
		travel = r.Delay
	}
	b.ReportMetric(float64(travel), "travel_µs")
}

// BenchmarkFig4_FabricGeneration measures building the 45×85 fabric
// of Fig. 4 (grid synthesis plus topology derivation).
func BenchmarkFig4_FabricGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := fabric.Generate(fabric.GenSpec{Rows: 45, Cols: 85, Pitch: 4})
		if err != nil {
			b.Fatal(err)
		}
		if len(f.Traps) != 462 {
			b.Fatal("unexpected trap count")
		}
	}
}

// ablationConfig builds QSPR's engine config with one design choice
// reverted (DESIGN.md §5).
func ablationConfig(mod func(*engine.Config)) engine.Config {
	cfg := engine.Config{
		Fabric: benchFabric, Tech: gates.Default(),
		Policy: sched.QSPR, Weights: sched.DefaultWeights(),
		TurnAware: true, BothMove: true, MedianTarget: true,
	}
	mod(&cfg)
	return cfg
}

func runAblation(b *testing.B, circuit string, mod func(*engine.Config)) {
	b.Helper()
	bench, err := circuits.ByName(circuit)
	if err != nil {
		b.Fatal(err)
	}
	g, err := qidg.Build(bench.Program)
	if err != nil {
		b.Fatal(err)
	}
	cfg := ablationConfig(mod)
	var latency gates.Time
	for i := 0; i < b.N; i++ {
		sol, err := place.MVFB(g, cfg, place.DefaultMVFBOptions(3))
		if err != nil {
			b.Fatal(err)
		}
		latency = sol.Result.Latency
	}
	b.ReportMetric(float64(latency), "latency_µs")
}

// BenchmarkAblationTurnAware quantifies the Fig. 5c turn-aware metric.
func BenchmarkAblationTurnAware(b *testing.B) {
	b.Run("on", func(b *testing.B) { runAblation(b, "[[23,1,7]]", func(*engine.Config) {}) })
	b.Run("off", func(b *testing.B) {
		runAblation(b, "[[23,1,7]]", func(c *engine.Config) { c.TurnAware = false })
	})
}

// BenchmarkAblationCapacity quantifies ion multiplexing (channel
// capacity 2 vs 1).
func BenchmarkAblationCapacity(b *testing.B) {
	b.Run("cap2", func(b *testing.B) { runAblation(b, "[[23,1,7]]", func(*engine.Config) {}) })
	b.Run("cap1", func(b *testing.B) {
		runAblation(b, "[[23,1,7]]", func(c *engine.Config) { c.Tech.ChannelCapacity = 1 })
	})
}

// BenchmarkAblationBothMove quantifies moving both operands toward
// the median trap vs moving only the source.
func BenchmarkAblationBothMove(b *testing.B) {
	b.Run("both", func(b *testing.B) { runAblation(b, "[[23,1,7]]", func(*engine.Config) {}) })
	b.Run("single", func(b *testing.B) {
		runAblation(b, "[[23,1,7]]", func(c *engine.Config) { c.BothMove = false; c.MedianTarget = false })
	})
}

// BenchmarkAblationMedian quantifies median trap selection vs always
// gating in the destination qubit's trap.
func BenchmarkAblationMedian(b *testing.B) {
	b.Run("median", func(b *testing.B) { runAblation(b, "[[23,1,7]]", func(*engine.Config) {}) })
	b.Run("destination", func(b *testing.B) {
		runAblation(b, "[[23,1,7]]", func(c *engine.Config) { c.MedianTarget = false })
	})
}

// BenchmarkAblationPriority compares the combined QSPR scheduling
// priority against its two components alone.
func BenchmarkAblationPriority(b *testing.B) {
	b.Run("combined", func(b *testing.B) { runAblation(b, "[[23,1,7]]", func(*engine.Config) {}) })
	b.Run("dependents-only", func(b *testing.B) {
		runAblation(b, "[[23,1,7]]", func(c *engine.Config) { c.Weights = sched.Weights{Dependents: 1} })
	})
	b.Run("pathdelay-only", func(b *testing.B) {
		runAblation(b, "[[23,1,7]]", func(c *engine.Config) { c.Weights = sched.Weights{PathDelay: 1} })
	})
}

// BenchmarkEncoderSynthesis measures stabilizer encoder synthesis
// plus exact verification for the largest benchmark code.
func BenchmarkEncoderSynthesis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := circuits.Synthesized513(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Extension experiments beyond the paper's tables ----

// BenchmarkExtFabricSizeSweep maps one fixed workload onto fabrics of
// growing size: larger fabrics reduce congestion but lengthen routes.
func BenchmarkExtFabricSizeSweep(b *testing.B) {
	prog, err := qasmgen.RandomClifford(12, 60, 0.25, 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []struct{ r, c int }{{13, 25}, {21, 41}, {45, 85}, {61, 121}} {
		b.Run(fmt.Sprintf("%dx%d", size.r, size.c), func(b *testing.B) {
			f, err := fabric.Generate(fabric.GenSpec{Rows: size.r, Cols: size.c, Pitch: 4})
			if err != nil {
				b.Fatal(err)
			}
			var latency gates.Time
			for i := 0; i < b.N; i++ {
				res, err := core.Map(prog, f, core.Options{Heuristic: core.QSPR, Seeds: 5})
				if err != nil {
					b.Fatal(err)
				}
				latency = res.Latency
			}
			b.ReportMetric(float64(latency), "latency_µs")
		})
	}
}

// BenchmarkExtCapacitySweep varies the channel capacity (the ion
// multiplexing degree the paper credits refs [8][9][10] for) on a
// congestion-heavy brickwork workload.
func BenchmarkExtCapacitySweep(b *testing.B) {
	prog, err := qasmgen.BrickworkLayers(16, 8)
	if err != nil {
		b.Fatal(err)
	}
	for _, cap := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("cap%d", cap), func(b *testing.B) {
			tech := gates.Default()
			tech.ChannelCapacity = cap
			var latency gates.Time
			for i := 0; i < b.N; i++ {
				res, err := core.Map(prog, benchFabric, core.Options{
					Heuristic: core.QSPR, Seeds: 5, Tech: &tech,
				})
				if err != nil {
					b.Fatal(err)
				}
				latency = res.Latency
			}
			b.ReportMetric(float64(latency), "latency_µs")
		})
	}
}

// BenchmarkExtWorkloadShapes compares the mapper across circuit
// families with opposite dependency structure: serial GHZ chains,
// maximally parallel brickwork, random Clifford circuits, and a
// Steane syndrome-extraction round.
func BenchmarkExtWorkloadShapes(b *testing.B) {
	ghz, err := qasmgen.GHZ(16)
	if err != nil {
		b.Fatal(err)
	}
	brick, err := qasmgen.BrickworkLayers(16, 6)
	if err != nil {
		b.Fatal(err)
	}
	rnd, err := qasmgen.RandomClifford(16, 90, 0.3, 3)
	if err != nil {
		b.Fatal(err)
	}
	syn, err := qasmgen.SteaneSyndrome()
	if err != nil {
		b.Fatal(err)
	}
	workloads := []struct {
		name string
		prog *qasm.Program
	}{
		{"ghz-chain", ghz}, {"brickwork", brick}, {"random-clifford", rnd}, {"steane-syndrome", syn},
	}
	for _, w := range workloads {
		b.Run(w.name, func(b *testing.B) {
			var latency, ideal gates.Time
			for i := 0; i < b.N; i++ {
				res, err := core.Map(w.prog, benchFabric, core.Options{Heuristic: core.QSPR, Seeds: 5})
				if err != nil {
					b.Fatal(err)
				}
				latency, ideal = res.Latency, res.Ideal
			}
			b.ReportMetric(float64(latency), "latency_µs")
			b.ReportMetric(float64(latency-ideal), "overhead_µs")
		})
	}
}

// BenchmarkExtMVFBWorkers measures the parallel MVFB speedup under
// per-seed stopping (the solution is bit-identical for any worker
// count; worker=1 here uses the same scope for a fair comparison).
func BenchmarkExtMVFBWorkers(b *testing.B) {
	bench, err := circuits.ByName("[[23,1,7]]")
	if err != nil {
		b.Fatal(err)
	}
	g, err := qidg.Build(bench.Program)
	if err != nil {
		b.Fatal(err)
	}
	cfg := ablationConfig(func(*engine.Config) {})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := place.MVFBOptions{
				Seeds: 8, Patience: 3, MaxRunsPerSeed: 50, Seed: 1,
				PatienceScope: place.ScopeSeed, Workers: workers,
			}
			for i := 0; i < b.N; i++ {
				if _, err := place.MVFB(g, cfg, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtDefectSweep maps the [[9,1,3]] encoder on fabrics with
// growing channel yield loss (defective channels chosen pseudo-
// randomly among trapless channels so every trap stays reachable).
func BenchmarkExtDefectSweep(b *testing.B) {
	bench, err := circuits.ByName("[[9,1,3]]")
	if err != nil {
		b.Fatal(err)
	}
	g, err := qidg.Build(bench.Program)
	if err != nil {
		b.Fatal(err)
	}
	f := benchFabric
	access := map[int]bool{}
	for _, tr := range f.Traps {
		access[tr.Channel] = true
	}
	var pool []int
	for _, ch := range f.Channels {
		if !access[ch.ID] {
			pool = append(pool, ch.ID)
		}
	}
	for _, pct := range []int{0, 5, 10, 20, 40} {
		b.Run(fmt.Sprintf("defects=%d%%", pct), func(b *testing.B) {
			rng := rand.New(rand.NewSource(99))
			var defects []int
			for _, ch := range pool {
				if rng.Intn(100) < pct {
					defects = append(defects, ch)
				}
			}
			cfg := ablationConfig(func(c *engine.Config) { c.DefectiveChannels = defects })
			var latency gates.Time
			for i := 0; i < b.N; i++ {
				sol, err := place.MVFB(g, cfg, place.DefaultMVFBOptions(5))
				if err != nil {
					b.Fatal(err)
				}
				latency = sol.Result.Latency
			}
			b.ReportMetric(float64(latency), "latency_µs")
			b.ReportMetric(float64(len(defects)), "dead_channels")
		})
	}
}

// BenchmarkExtPathFinder compares PathFinder's negotiated batch
// routing against naive independent shortest paths for a batch of
// simultaneous trips on the capacity-1 (QUALE-era) fabric graph.
func BenchmarkExtPathFinder(b *testing.B) {
	tech := gates.Default()
	tech.ChannelCapacity = 1
	g := routegraph.New(benchFabric, tech, routegraph.Options{TurnAware: false})
	rng := rand.New(rand.NewSource(5))
	// Endpoints must sit on distinct channels: with capacity 1 two
	// trips sharing one trap-access channel can never coexist.
	usedChannel := map[int]bool{}
	pick := func() int {
		for {
			tr := rng.Intn(len(benchFabric.Traps))
			ch := benchFabric.Traps[tr].Channel
			if !usedChannel[ch] {
				usedChannel[ch] = true
				return tr
			}
		}
	}
	var nets []pathfinder.Net
	for i := 0; i < 12; i++ {
		nets = append(nets, pathfinder.Net{ID: i, From: pick(), To: pick()})
	}
	b.Run("negotiated", func(b *testing.B) {
		var iters int
		feasible := false
		for i := 0; i < b.N; i++ {
			res, err := pathfinder.Route(g, nets, pathfinder.Options{})
			if err != nil {
				b.Fatal(err)
			}
			iters = res.Iterations
			feasible = res.Feasible
		}
		b.ReportMetric(float64(iters), "iterations")
		if !feasible {
			b.Log("negotiation did not converge")
		}
	})
}
