// Command qecc emits the QECC encoder benchmark circuits as QASM and
// inspects their stabilizer codes.
//
// Usage:
//
//	qecc -list                       # available codes
//	qecc -code '[[7,1,3]]'           # print the encoder QASM
//	qecc -code '[[23,1,7]]' -gens    # print the stabilizer generators
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/circuits"
	"repro/internal/qidg"
	"repro/internal/stabilizer"

	"repro/internal/gates"
)

func main() {
	var (
		code = flag.String("code", "", "code name, e.g. '[[9,1,3]]'")
		list = flag.Bool("list", false, "list available codes")
		gens = flag.Bool("gens", false, "print stabilizer generators instead of the circuit")
	)
	flag.Parse()
	if *list {
		for _, b := range circuits.All() {
			g, err := qidg.Build(b.Program)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-12s %2d qubits, %3d gates, ideal latency %v (%s)\n",
				b.Name, b.Program.NumQubits(), len(b.Program.Gates()),
				g.CriticalPathLatency(gates.Default()), b.Source)
		}
		return
	}
	if *code == "" {
		fatal(fmt.Errorf("-code or -list required"))
	}
	if *gens {
		for _, c := range stabilizer.KnownCodes() {
			if c.Name == *code {
				for i := 0; i < c.N-c.K; i++ {
					fmt.Println(c.GeneratorString(i))
				}
				return
			}
		}
		fatal(fmt.Errorf("unknown code %q", *code))
	}
	b, err := circuits.ByName(*code)
	if err != nil {
		fatal(err)
	}
	fmt.Print(b.Program.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qecc:", err)
	os.Exit(1)
}
