// Command fabricgen generates and renders ion-trap circuit fabrics
// in the Fig. 4 cell format (J junction, C channel, T trap, . empty).
//
// Usage:
//
//	fabricgen                                  # the paper's 45x85 fabric
//	fabricgen -rows 9 -cols 9                  # a small fabric
//	fabricgen -family 'htree(depth=4,arm=4)'   # a generator family spec
//	fabricgen -families                        # list family grammars
//	fabricgen -stats                           # counts only, no grid
//	fabricgen -check fab.txt                   # parse and validate a fabric file
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fabric"
)

func main() {
	var (
		rows     = flag.Int("rows", 45, "grid rows")
		cols     = flag.Int("cols", 85, "grid columns")
		pitch    = flag.Int("pitch", 4, "junction pitch")
		family   = flag.String("family", "", "generator family spec, e.g. 'grid(rows=89,cols=89,pitch=4)' (overrides -rows/-cols/-pitch)")
		families = flag.Bool("families", false, "list the generator family grammars and exit")
		stats    = flag.Bool("stats", false, "print statistics only")
		check    = flag.String("check", "", "parse and validate a fabric file instead of generating")
	)
	flag.Parse()
	if *families {
		for _, g := range fabric.Families() {
			fmt.Println(g)
		}
		return
	}
	var (
		f   *fabric.Fabric
		err error
	)
	switch {
	case *check != "":
		var file *os.File
		file, err = os.Open(*check)
		if err == nil {
			defer file.Close()
			f, err = fabric.ParseText(file)
		}
	case *family != "":
		var name string
		f, name, err = fabric.Resolve(*family)
		if err == nil {
			fmt.Fprintln(os.Stderr, name)
		}
	default:
		f, err = fabric.Generate(fabric.GenSpec{Rows: *rows, Cols: *cols, Pitch: *pitch})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fabricgen:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, f.Stats())
	if !*stats {
		fmt.Print(fabric.Render(f))
	}
}
