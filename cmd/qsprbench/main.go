// Command qsprbench sweeps the QSPR-vs-QUALE comparison (or any
// heuristic mix) over benchmark circuits, fabrics and knob settings
// in parallel, and emits a deterministic report.
//
//	qsprbench                                  # paper headline: all circuits, QUALE vs QSPR
//	qsprbench -m 100 -format markdown          # Table 2 protocol, markdown output
//	qsprbench -circuits '[[5,1,3]],[[9,1,3]]' -heuristics all -m 5,25
//	qsprbench -circuits 'rand(q=20,g=400,seed=7),ghz(q=16)'   # generator families
//	qsprbench -parallel 8 -format csv -out results.csv
//	qsprbench -parallel 8 -inner-parallel 4 -m 100    # 2 runs × 4 MVFB workers
//	qsprbench -fabric fab.txt -compare=false -format json
//	qsprbench -shard 0/4 -checkpoint s0.jsonl  # one of four shard processes
//	qsprbench -merge 's0.jsonl,s1.jsonl,s2.jsonl,s3.jsonl' -format csv
//	qsprbench -coordinate :9650 -checkpoint-dir sweep/   # hand out dynamic shards
//	qsprbench -worker coord-host:9650                    # execute leases from there
//
// A sweep can be split across processes or machines with -shard i/n
// and checkpointed per-run with -checkpoint (JSONL; re-running the
// same invocation resumes, mapping only what is missing). -merge
// combines shard checkpoints into one report whose bytes are
// identical to a single unsharded run.
//
// -coordinate replaces static shards with dynamic ones: the
// coordinator listens on TCP, leases small run-index chunks to
// -worker processes (which need no spec flags — the spec travels over
// the wire and is fingerprint-checked), streams their records into
// <checkpoint-dir>/coord.jsonl, reassigns the leases of workers that
// die or go silent past -lease-ttl, and splits straggler tails for
// idle workers. The final report is byte-identical to the unsharded
// run (see docs/ARCHITECTURE.md, "Distributed sweeps").
//
// The emitted JSON/CSV/markdown bytes are identical for any -parallel
// and -inner-parallel values: each run is mapped by a seeded,
// deterministically-parallel core.Map call, results are aggregated in
// declaration order, and wall-clock time is excluded from the report.
// -parallel is the sweep's CPU budget; when -inner-parallel asks for
// workers inside each mapping the across-run pool shrinks so the two
// levels never oversubscribe it (see docs/CONCURRENCY.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/noise"
)

func main() { os.Exit(run()) }

// run is main with an exit code: keeping the profile-flushing defers
// on a normal return path (os.Exit would skip them and truncate the
// CPU profile). The named result lets the deferred heap-profile
// writer flip a successful sweep to a failing exit.
func run() (code int) {
	var (
		circuitsF  = flag.String("circuits", "all", "comma-separated circuit sources (built-in names, generator families like 'rand(q=20,g=400,seed=7)', 'qasm(path=f.qasm)'), or 'all'")
		heuristics = flag.String("heuristics", "quale,qspr", "comma-separated heuristics ("+strings.Join(experiment.HeuristicNames(), ", ")+") or 'all'")
		backendsF  = flag.String("backend", "ion", "comma-separated mapping backends ("+strings.Join(core.BackendNames(), ", ")+") or 'all'")
		noiseSpec  = flag.String("noise", "", "score every run with the noise model and report p_fail: 'default' or comma-separated overrides (1q=, 2q=, move=, turn=, decay=)")
		paretoF    = flag.Bool("pareto", false, "report only the per-circuit×fabric Pareto front over (latency, p_fail); needs -noise, or noise-scored checkpoints with -merge")
		mList      = flag.String("m", "25", "comma-separated MVFB seed counts to sweep")
		seed       = flag.Int64("seed", 1, "random seed")
		annMoves   = flag.Int("anneal-moves", 0, "annealing placer: proposed moves per restart chain (0 = 400); >0 also enters the annealer in portfolio runs")
		annRest    = flag.Int("anneal-restarts", 0, "annealing placer: independent restart chains (0 = 4)")
		annCool    = flag.Float64("anneal-cooling", 0, "annealing placer: per-move temperature multiplier in (0,1) (0 = 0.97)")
		fabPath    = flag.String("fabric", "", "fabric description file (default: the 45x85 Fig. 4 fabric)")
		parallel   = flag.Int("parallel", 0, "CPU budget for the sweep (0 = all CPU cores); shared between across-run workers and -inner-parallel; output is identical for any value")
		innerPar   = flag.Int("inner-parallel", 0, "workers within each mapping (MVFB starts / MC trials / portfolio placers); output is identical for any value")
		format     = flag.String("format", "markdown", "report format: json, csv, markdown")
		out        = flag.String("out", "", "write the report to this file instead of stdout")
		compare    = flag.Bool("compare", true, "also print the QSPR-vs-QUALE comparison table to stderr")
		progress   = flag.Bool("progress", false, "print per-run progress to stderr")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (after the sweep) to this file")
		shardF     = flag.String("shard", "", "run only shard i of n ('i/n') of the expanded sweep; merge the shards with -merge")
		checkpoint = flag.String("checkpoint", "", "append completed runs to this JSONL file and resume from it (failed runs are retried)")
		merge      = flag.String("merge", "", "merge comma-separated checkpoint JSONL files into one report and exit (no mapping)")
		coordinate = flag.String("coordinate", "", "coordinate a distributed sweep: listen on this host:port and lease dynamic shards to -worker processes")
		workerAddr = flag.String("worker", "", "run as a worker for the coordinator at this host:port (the sweep spec comes from the coordinator)")
		chunkSize  = flag.Int("chunk", 0, "runs per dynamic shard lease (with -coordinate; default 16)")
		leaseTTL   = flag.Duration("lease-ttl", 0, "worker silence tolerated before its leases are reassigned (with -coordinate; default 10s)")
		ckptDir    = flag.String("checkpoint-dir", "", "coordinator checkpoint directory: records append to <dir>/coord.jsonl and a restarted coordinator resumes from it (with -coordinate)")
		workerName = flag.String("worker-name", "", "name reported to the coordinator (with -worker; default <hostname>:<pid>)")
	)
	flag.Parse()

	if *coordinate != "" && *workerAddr != "" {
		return fail(fmt.Errorf("-coordinate and -worker are different processes: pick one"))
	}
	if *coordinate != "" {
		// The coordinator never maps runs itself, so the single-process
		// execution flags would be silently dead weight next to it.
		if conflict := visitedFlags("shard", "checkpoint", "merge", "parallel", "worker-name", "cpuprofile", "memprofile"); len(conflict) > 0 {
			return fail(fmt.Errorf("-coordinate hands runs to -worker processes and conflicts with %s", strings.Join(conflict, ", ")))
		}
		desc := coord.SpecDesc{
			Circuits: *circuitsF, Heuristics: *heuristics, M: *mList,
			Seed: *seed, Fabric: *fabPath, InnerParallel: *innerPar,
			AnnealMoves: *annMoves, AnnealRestarts: *annRest, AnnealCooling: *annCool,
			Backends: *backendsF, Noise: *noiseSpec,
		}
		if *paretoF && *noiseSpec == "" {
			return fail(fmt.Errorf("-pareto needs a noise-scored sweep: add -noise (e.g. -noise default)"))
		}
		return runCoordinator(*coordinate, desc, *chunkSize, *leaseTTL, *ckptDir, *format, *out, *compare, *progress, *paretoF)
	}
	if *workerAddr != "" {
		// A worker takes its spec from the coordinator; spec flags here
		// would describe a sweep that is never consulted.
		if conflict := visitedFlags("circuits", "heuristics", "backend", "noise", "pareto", "m", "seed", "fabric", "inner-parallel",
			"anneal-moves", "anneal-restarts", "anneal-cooling",
			"shard", "checkpoint", "merge", "format", "out", "compare", "chunk", "lease-ttl", "checkpoint-dir"); len(conflict) > 0 {
			return fail(fmt.Errorf("-worker receives the sweep spec from the coordinator and conflicts with %s", strings.Join(conflict, ", ")))
		}
		return runWorker(*workerAddr, *workerName, *parallel, *progress)
	}
	// The coordinator-family flags mean nothing on the single-process
	// paths; silently ignoring them would hide a typo'd deployment.
	var coordOnly []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "chunk", "lease-ttl", "checkpoint-dir", "worker-name":
			coordOnly = append(coordOnly, "-"+f.Name)
		}
	})
	if len(coordOnly) > 0 {
		return fail(fmt.Errorf("%s require -coordinate or -worker", strings.Join(coordOnly, ", ")))
	}

	if *merge != "" {
		// -merge only reads its checkpoint files: a sweep flag next to
		// it (-checkpoint especially, which looks like another input
		// file) would be silently ignored, so the mix is rejected.
		var conflict []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "merge", "format", "out", "compare", "pareto":
			default:
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return fail(fmt.Errorf("-merge reads only its checkpoint files and conflicts with %s", strings.Join(conflict, ", ")))
		}
		if err := experiment.ValidateFormat(*format); err != nil {
			return fail(err)
		}
		rep, err := experiment.LoadCheckpoints(strings.Split(*merge, ",")...)
		if err != nil {
			return fail(err)
		}
		if err := writeSweepReport(rep, *format, *out, *paretoF); err != nil {
			return fail(err)
		}
		if *compare {
			fmt.Fprintln(os.Stderr)
			fmt.Fprintln(os.Stderr, "QSPR vs QUALE:")
			if err := rep.WriteComparison(os.Stderr); err != nil {
				return fail(err)
			}
		}
		// Failed cells in the merged report flip the exit code, same
		// as on the sweep path — a CI gate must not pass silently.
		// So does a provably incomplete merge (an unfinished shard's
		// runs interleave round-robin, so they show up as index gaps);
		// the report is still written for inspection.
		code := reportFailures(rep)
		if missing := rep.MissingRuns(); len(missing) > 0 {
			fmt.Fprintf(os.Stderr, "qsprbench: merged checkpoints are missing %d runs (first gap: index %d) — unfinished shard?\n",
				len(missing), missing[0])
			code = 1
		}
		return code
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				code = fail(err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				code = fail(err)
			}
		}()
	}

	if err := experiment.ValidateFormat(*format); err != nil {
		return fail(err)
	}
	spec := experiment.Spec{
		Seed: *seed, InnerParallel: *innerPar,
		AnnealMoves: *annMoves, AnnealRestarts: *annRest, AnnealCooling: *annCool,
	}
	var err error
	if spec.Circuits, err = experiment.SelectCircuits(*circuitsF); err != nil {
		return fail(err)
	}
	if spec.Heuristics, err = experiment.ParseHeuristics(*heuristics); err != nil {
		return fail(err)
	}
	if spec.Backends, err = experiment.ParseBackends(*backendsF); err != nil {
		return fail(err)
	}
	if *noiseSpec != "" {
		p, err := noise.Parse(*noiseSpec)
		if err != nil {
			return fail(err)
		}
		spec.Noise = &p
	}
	if *paretoF && spec.Noise == nil {
		return fail(fmt.Errorf("-pareto needs a noise-scored sweep: add -noise (e.g. -noise default)"))
	}
	if spec.SeedCounts, err = experiment.ParseSeedCounts(*mList); err != nil {
		return fail(err)
	}
	fc, err := experiment.LoadFabric(*fabPath)
	if err != nil {
		return fail(err)
	}
	spec.Fabrics = []experiment.FabricChoice{fc}

	shard, err := experiment.ParseShard(*shardF)
	if err != nil {
		return fail(err)
	}
	opts := experiment.Options{Workers: *parallel, Shard: shard, Checkpoint: *checkpoint}
	runs, err := spec.Runs()
	if err != nil {
		return fail(err)
	}
	// owned is the number of runs this invocation reports (its shard's
	// slice) — the denominator for -progress and the interrupt notice.
	owned := len(runs)
	if shard.Count > 1 {
		owned = 0
		for _, r := range runs {
			if shard.Owns(r.Index) {
				owned++
			}
		}
		fmt.Fprintf(os.Stderr, "qsprbench: shard %s owns %d of %d runs\n", shard, owned, len(runs))
	}
	if *progress {
		total := owned
		n := 0
		opts.OnResult = func(rr experiment.RunResult) {
			n++
			status := "ok"
			if rr.Err != "" {
				status = "FAILED: " + rr.Err
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s × %s m=%d (%v) %s\n",
				n, total, rr.Circuit.Name, rr.Heuristic, rr.Seeds, rr.Wall.Round(1e6), status)
		}
	}

	// Ctrl-C stops the sweep between runs; completed runs are still
	// reported.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rep, err := experiment.Execute(ctx, spec, opts)
	if rep == nil {
		// Nothing ran: an invalid option (bad shard, mismatched or
		// unreadable checkpoint) was rejected before the sweep began.
		return fail(err)
	}
	interrupted := err != nil
	if interrupted {
		// Execute errors for exactly two reasons: cancellation, or a
		// checkpoint write failure — name the right one so a disk-full
		// sweep does not read like a Ctrl-C.
		kind := "sweep interrupted"
		if ctx.Err() == nil {
			kind = "checkpoint error"
		}
		fmt.Fprintf(os.Stderr, "qsprbench: %s (%v); reporting %d/%d completed runs\n",
			kind, err, len(rep.Results), owned)
	}

	if err := writeSweepReport(rep, *format, *out, *paretoF); err != nil {
		return fail(err)
	}
	if *compare {
		fmt.Fprintln(os.Stderr)
		fmt.Fprintln(os.Stderr, "QSPR vs QUALE:")
		if err := rep.WriteComparison(os.Stderr); err != nil {
			return fail(err)
		}
	}
	if code := reportFailures(rep); code != 0 || interrupted {
		return 1
	}
	return 0
}

// writeSweepReport emits the full report, or its Pareto-front pivot
// when -pareto asks for the multi-objective view — one definition of
// the output protocol shared by the sweep, -merge and -coordinate
// paths.
func writeSweepReport(rep *experiment.Report, format, out string, pareto bool) error {
	if pareto {
		return rep.WriteParetoFile(format, out)
	}
	return rep.WriteFile(format, out)
}

// reportFailures announces every failed run on stderr and returns 1
// if there was any — shared by the sweep and -merge paths so failed
// cells always flip the exit code.
func reportFailures(rep *experiment.Report) int {
	code := 0
	for _, rr := range rep.Results {
		if rr.Err != "" {
			fmt.Fprintf(os.Stderr, "qsprbench: %s × %s m=%d failed: %s\n",
				rr.Circuit.Name, rr.Heuristic, rr.Seeds, rr.Err)
			code = 1
		}
	}
	return code
}

// visitedFlags returns which of the named flags were explicitly set
// on the command line.
func visitedFlags(names ...string) []string {
	bad := map[string]bool{}
	for _, n := range names {
		bad[n] = true
	}
	var hit []string
	flag.Visit(func(f *flag.Flag) {
		if bad[f.Name] {
			hit = append(hit, "-"+f.Name)
		}
	})
	return hit
}

// runCoordinator serves a distributed sweep: it owns the spec, leases
// dynamic shards to workers, ingests their records, and writes the
// final report exactly like a single-process sweep would.
func runCoordinator(addr string, desc coord.SpecDesc, chunk int, ttl time.Duration, dir, format, out string, compare, progress, pareto bool) int {
	if err := experiment.ValidateFormat(format); err != nil {
		return fail(err)
	}
	ckpt := ""
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fail(err)
		}
		ckpt = filepath.Join(dir, "coord.jsonl")
	}
	c, err := coord.New(coord.Config{
		Addr: addr, Desc: desc, ChunkSize: chunk, LeaseTTL: ttl,
		Checkpoint: ckpt, OnEvent: coordProgress(progress),
	})
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "qsprbench: coordinating %d runs on %s\n", c.Runs(), c.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rep, err := c.Run(ctx)
	interrupted := err != nil
	if interrupted {
		fmt.Fprintf(os.Stderr, "qsprbench: coordinated sweep stopped (%v); reporting %d/%d recorded runs\n",
			err, len(rep.Results), c.Runs())
	}
	if err := writeSweepReport(rep, format, out, pareto); err != nil {
		return fail(err)
	}
	if compare {
		fmt.Fprintln(os.Stderr)
		fmt.Fprintln(os.Stderr, "QSPR vs QUALE:")
		if err := rep.WriteComparison(os.Stderr); err != nil {
			return fail(err)
		}
	}
	if code := reportFailures(rep); code != 0 || interrupted {
		return 1
	}
	return 0
}

// coordProgress renders coordinator events on stderr: membership and
// recovery events always (they are rare and are the operator's only
// view of fleet health), per-record lines only with -progress, and an
// aggregate done/total line at most once a second otherwise.
func coordProgress(verbose bool) func(coord.Event) {
	var mu sync.Mutex
	var lastAggregate time.Time
	return func(ev coord.Event) {
		mu.Lock()
		defer mu.Unlock()
		switch ev.Kind {
		case coord.EventResume:
			if ev.Done > 0 {
				fmt.Fprintf(os.Stderr, "qsprbench: resumed %d/%d runs from checkpoint\n", ev.Done, ev.Total)
			}
		case coord.EventWorkerJoin:
			fmt.Fprintf(os.Stderr, "qsprbench: worker %s joined [%d/%d]\n", ev.Worker, ev.Done, ev.Total)
		case coord.EventWorkerLeave:
			fmt.Fprintf(os.Stderr, "qsprbench: worker %s left (%s) [%d/%d]\n", ev.Worker, ev.Detail, ev.Done, ev.Total)
		case coord.EventLeaseSteal:
			fmt.Fprintf(os.Stderr, "qsprbench: %s took %d runs, %s [%d/%d]\n",
				ev.Worker, len(ev.Indices), ev.Detail, ev.Done, ev.Total)
		case coord.EventRequeue:
			fmt.Fprintf(os.Stderr, "qsprbench: requeued %d runs from %s (%s) [%d/%d]\n",
				len(ev.Indices), ev.Worker, ev.Detail, ev.Done, ev.Total)
		case coord.EventLeaseGrant:
			if verbose {
				fmt.Fprintf(os.Stderr, "qsprbench: leased %d runs to %s [%d/%d]\n",
					len(ev.Indices), ev.Worker, ev.Done, ev.Total)
			}
		case coord.EventRecord:
			if verbose {
				fmt.Fprintf(os.Stderr, "[%d/%d] run %d done (%s)\n", ev.Done, ev.Total, ev.Index, ev.Worker)
			} else if time.Since(lastAggregate) >= time.Second || ev.Done == ev.Total {
				lastAggregate = time.Now()
				fmt.Fprintf(os.Stderr, "qsprbench: %d/%d runs recorded\n", ev.Done, ev.Total)
			}
		case coord.EventDone:
			fmt.Fprintf(os.Stderr, "qsprbench: sweep complete: %d/%d runs\n", ev.Done, ev.Total)
		}
	}
}

// runWorker executes leases for a coordinator until the sweep is done.
func runWorker(addr, name string, parallel int, progress bool) int {
	w := &coord.Worker{Addr: addr, Name: name, Parallel: parallel}
	if progress {
		w.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "qsprbench: "+format+"\n", args...)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := w.Run(ctx); err != nil {
		return fail(err)
	}
	fmt.Fprintln(os.Stderr, "qsprbench: worker done")
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "qsprbench:", err)
	return 1
}
