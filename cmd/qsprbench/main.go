// Command qsprbench sweeps the QSPR-vs-QUALE comparison (or any
// heuristic mix) over benchmark circuits, fabrics and knob settings
// in parallel, and emits a deterministic report.
//
//	qsprbench                                  # paper headline: all circuits, QUALE vs QSPR
//	qsprbench -m 100 -format markdown          # Table 2 protocol, markdown output
//	qsprbench -circuits '[[5,1,3]],[[9,1,3]]' -heuristics all -m 5,25
//	qsprbench -parallel 8 -format csv -out results.csv
//	qsprbench -parallel 8 -inner-parallel 4 -m 100    # 2 runs × 4 MVFB workers
//	qsprbench -fabric fab.txt -compare=false -format json
//
// The emitted JSON/CSV/markdown bytes are identical for any -parallel
// and -inner-parallel values: each run is mapped by a seeded,
// deterministically-parallel core.Map call, results are aggregated in
// declaration order, and wall-clock time is excluded from the report.
// -parallel is the sweep's CPU budget; when -inner-parallel asks for
// workers inside each mapping the across-run pool shrinks so the two
// levels never oversubscribe it (see docs/CONCURRENCY.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"

	"repro/internal/experiment"
)

func main() { os.Exit(run()) }

// run is main with an exit code: keeping the profile-flushing defers
// on a normal return path (os.Exit would skip them and truncate the
// CPU profile). The named result lets the deferred heap-profile
// writer flip a successful sweep to a failing exit.
func run() (code int) {
	var (
		circuitsF  = flag.String("circuits", "all", "comma-separated built-in circuit names, or 'all'")
		heuristics = flag.String("heuristics", "quale,qspr", "comma-separated heuristics (qspr, qspr-center, mc, quale, qpos, qpos-delay, portfolio) or 'all'")
		mList      = flag.String("m", "25", "comma-separated MVFB seed counts to sweep")
		seed       = flag.Int64("seed", 1, "random seed")
		fabPath    = flag.String("fabric", "", "fabric description file (default: the 45x85 Fig. 4 fabric)")
		parallel   = flag.Int("parallel", 0, "CPU budget for the sweep (0 = all CPU cores); shared between across-run workers and -inner-parallel; output is identical for any value")
		innerPar   = flag.Int("inner-parallel", 0, "workers within each mapping (MVFB starts / MC trials / portfolio placers); output is identical for any value")
		format     = flag.String("format", "markdown", "report format: json, csv, markdown")
		out        = flag.String("out", "", "write the report to this file instead of stdout")
		compare    = flag.Bool("compare", true, "also print the QSPR-vs-QUALE comparison table to stderr")
		progress   = flag.Bool("progress", false, "print per-run progress to stderr")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (after the sweep) to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				code = fail(err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				code = fail(err)
			}
		}()
	}

	if err := experiment.ValidateFormat(*format); err != nil {
		return fail(err)
	}
	spec := experiment.Spec{Seed: *seed, InnerParallel: *innerPar}
	var err error
	if spec.Circuits, err = experiment.SelectCircuits(*circuitsF); err != nil {
		return fail(err)
	}
	if spec.Heuristics, err = experiment.ParseHeuristics(*heuristics); err != nil {
		return fail(err)
	}
	if spec.SeedCounts, err = experiment.ParseSeedCounts(*mList); err != nil {
		return fail(err)
	}
	fc, err := experiment.LoadFabric(*fabPath)
	if err != nil {
		return fail(err)
	}
	spec.Fabrics = []experiment.FabricChoice{fc}

	opts := experiment.Options{Workers: *parallel}
	runs, err := spec.Runs()
	if err != nil {
		return fail(err)
	}
	if *progress {
		total := len(runs)
		n := 0
		opts.OnResult = func(rr experiment.RunResult) {
			n++
			status := "ok"
			if rr.Err != "" {
				status = "FAILED: " + rr.Err
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s × %s m=%d (%v) %s\n",
				n, total, rr.Circuit.Name, rr.Heuristic, rr.Seeds, rr.Wall.Round(1e6), status)
		}
	}

	// Ctrl-C stops the sweep between runs; completed runs are still
	// reported.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rep, err := experiment.Execute(ctx, spec, opts)
	interrupted := err != nil
	if interrupted {
		fmt.Fprintf(os.Stderr, "qsprbench: sweep interrupted (%v); reporting %d/%d completed runs\n",
			err, len(rep.Results), len(runs))
	}

	if err := rep.WriteFile(*format, *out); err != nil {
		return fail(err)
	}
	if *compare {
		fmt.Fprintln(os.Stderr)
		fmt.Fprintln(os.Stderr, "QSPR vs QUALE:")
		if err := rep.WriteComparison(os.Stderr); err != nil {
			return fail(err)
		}
	}
	failed := false
	for _, rr := range rep.Results {
		if rr.Err != "" {
			fmt.Fprintf(os.Stderr, "qsprbench: %s × %s m=%d failed: %s\n",
				rr.Circuit.Name, rr.Heuristic, rr.Seeds, rr.Err)
			failed = true
		}
	}
	if interrupted || failed {
		return 1
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "qsprbench:", err)
	return 1
}
