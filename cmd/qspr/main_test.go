package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/circuits"
)

// TestRunReturnsInsteadOfExit: run must report failures through its
// exit code, never os.Exit — otherwise deferred flushes are skipped
// (the -out truncation bug this command shared with cmd/tables).
func TestRunReturnsInsteadOfExit(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-circuit", "nosuch"}, &out, &errb); code != 1 {
		t.Errorf("unknown circuit: code %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unknown benchmark") {
		t.Errorf("stderr %q", errb.String())
	}
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errb); code != 2 {
		t.Error("bad flag should return 2")
	}
	if code := run([]string{"-circuit", "[[5,1,3]]", "-format", "csv"}, &out, &errb); code != 1 {
		t.Error("-format on a single run should be rejected")
	}
	if code := run([]string{"-circuit", "[[5,1,3]],[[7,1,3]]", "-trace"}, &out, &errb); code != 1 {
		t.Error("-trace on a sweep should be rejected")
	}
}

// TestSweepReportFlushedDespiteFailure is the regression test for
// the os.Exit truncation bug: a sweep where one circuit fails must
// exit non-zero AND still write the complete report (including the
// failing row) to -out.
func TestSweepReportFlushedDespiteFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "report.csv")
	var out, errb bytes.Buffer
	// ghz(q=9999) exceeds the 462 traps of the default fabric, so its
	// run fails after the healthy run has produced partial output.
	code := run([]string{
		"-circuit", "ghz(q=4),ghz(q=9999)",
		"-heuristic", "qspr-center",
		"-format", "csv", "-out", path,
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("code %d, want 1 (stderr: %s)", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 { // header + 2 runs
		t.Fatalf("report has %d lines, want 3:\n%s", len(lines), data)
	}
	if !strings.Contains(lines[2], "exceed") {
		t.Errorf("failing row not recorded: %q", lines[2])
	}
	if !strings.Contains(errb.String(), "failed") {
		t.Errorf("failure not announced on stderr: %q", errb.String())
	}
}

// TestSingleRunQASMFile: the -qasm path maps an external file
// (written in the OpenQASM dialect) like any built-in circuit.
func TestSingleRunQASMFile(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "fig3.qasm")
	openqasm := `OPENQASM 2.0;
qreg q[5];
h q[0]; h q[1]; h q[2]; h q[4];
cx q[3],q[2]; cz q[4],q[2];
cy q[2],q[1]; cy q[3],q[1]; cx q[4],q[1];
cz q[2],q[0]; cy q[3],q[0]; cz q[4],q[0];
`
	if err := os.WriteFile(path, []byte(openqasm), 0o644); err != nil {
		t.Fatal(err)
	}
	var ext, builtin, errb bytes.Buffer
	if code := run([]string{"-qasm", path, "-heuristic", "qspr-center"}, &ext, &errb); code != 0 {
		t.Fatalf("qasm run failed: %s", errb.String())
	}
	if code := run([]string{"-circuit", "[[5,1,3]]", "-heuristic", "qspr-center"}, &builtin, &errb); code != 0 {
		t.Fatalf("builtin run failed: %s", errb.String())
	}
	latency := func(s string) string {
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "execution latency:") {
				return line
			}
		}
		return ""
	}
	if l := latency(ext.String()); l == "" || l != latency(builtin.String()) {
		t.Errorf("external copy latency %q != builtin %q", l, latency(builtin.String()))
	}
}

func TestListIncludesFamilies(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list failed: %s", errb.String())
	}
	for _, b := range circuits.All() {
		if !strings.Contains(out.String(), b.Name) {
			t.Errorf("-list missing %s", b.Name)
		}
	}
	if !strings.Contains(out.String(), "rand(q=") {
		t.Error("-list missing generator families")
	}
}
