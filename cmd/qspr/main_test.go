package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/serve"
)

// TestRunReturnsInsteadOfExit: run must report failures through its
// exit code, never os.Exit — otherwise deferred flushes are skipped
// (the -out truncation bug this command shared with cmd/tables).
func TestRunReturnsInsteadOfExit(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-circuit", "nosuch"}, &out, &errb); code != 1 {
		t.Errorf("unknown circuit: code %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unknown benchmark") {
		t.Errorf("stderr %q", errb.String())
	}
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errb); code != 2 {
		t.Error("bad flag should return 2")
	}
	if code := run([]string{"-circuit", "[[5,1,3]]", "-format", "csv"}, &out, &errb); code != 1 {
		t.Error("-format on a single run should be rejected")
	}
	if code := run([]string{"-circuit", "[[5,1,3]],[[7,1,3]]", "-trace"}, &out, &errb); code != 1 {
		t.Error("-trace on a sweep should be rejected")
	}
}

// TestSweepReportFlushedDespiteFailure is the regression test for
// the os.Exit truncation bug: a sweep where one circuit fails must
// exit non-zero AND still write the complete report (including the
// failing row) to -out.
func TestSweepReportFlushedDespiteFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "report.csv")
	var out, errb bytes.Buffer
	// ghz(q=9999) exceeds the 462 traps of the default fabric, so its
	// run fails after the healthy run has produced partial output.
	code := run([]string{
		"-circuit", "ghz(q=4),ghz(q=9999)",
		"-heuristic", "qspr-center",
		"-format", "csv", "-out", path,
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("code %d, want 1 (stderr: %s)", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 { // header + 2 runs
		t.Fatalf("report has %d lines, want 3:\n%s", len(lines), data)
	}
	if !strings.Contains(lines[2], "exceed") {
		t.Errorf("failing row not recorded: %q", lines[2])
	}
	if !strings.Contains(errb.String(), "failed") {
		t.Errorf("failure not announced on stderr: %q", errb.String())
	}
}

// TestSingleRunQASMFile: the -qasm path maps an external file
// (written in the OpenQASM dialect) like any built-in circuit.
func TestSingleRunQASMFile(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "fig3.qasm")
	openqasm := `OPENQASM 2.0;
qreg q[5];
h q[0]; h q[1]; h q[2]; h q[4];
cx q[3],q[2]; cz q[4],q[2];
cy q[2],q[1]; cy q[3],q[1]; cx q[4],q[1];
cz q[2],q[0]; cy q[3],q[0]; cz q[4],q[0];
`
	if err := os.WriteFile(path, []byte(openqasm), 0o644); err != nil {
		t.Fatal(err)
	}
	var ext, builtin, errb bytes.Buffer
	if code := run([]string{"-qasm", path, "-heuristic", "qspr-center"}, &ext, &errb); code != 0 {
		t.Fatalf("qasm run failed: %s", errb.String())
	}
	if code := run([]string{"-circuit", "[[5,1,3]]", "-heuristic", "qspr-center"}, &builtin, &errb); code != 0 {
		t.Fatalf("builtin run failed: %s", errb.String())
	}
	latency := func(s string) string {
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "execution latency:") {
				return line
			}
		}
		return ""
	}
	if l := latency(ext.String()); l == "" || l != latency(builtin.String()) {
		t.Errorf("external copy latency %q != builtin %q", l, latency(builtin.String()))
	}
}

// postServe drives a serve.Server's full handler path with one JSON
// body and returns the recorder.
func postServe(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/map", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// cliReport runs `qspr -report -` and returns the report bytes.
func cliReport(t *testing.T, args ...string) []byte {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run(append(args, "-report", "-"), &out, &errb); code != 0 {
		t.Fatalf("qspr %v: code %d: %s", args, code, errb.String())
	}
	return out.Bytes()
}

// TestReportMatchesService is the service's headline correctness
// pin: for both built-in fabrics × three registry specs (including an
// OpenQASM 2.0 source resolved through the qasm() family), the POST
// /map response bytes equal the `qspr -report -` bytes for the same
// inputs — and a cached hit re-serves exactly the cold-miss bytes.
func TestReportMatchesService(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	qasmPath := filepath.Join(t.TempDir(), "fig3.qasm")
	openqasm := `OPENQASM 2.0;
qreg q[5];
h q[0]; h q[1]; h q[2]; h q[4];
cx q[3],q[2]; cz q[4],q[2];
cy q[2],q[1]; cy q[3],q[1]; cx q[4],q[1];
cz q[2],q[0]; cy q[3],q[0]; cz q[4],q[0];
`
	if err := os.WriteFile(qasmPath, []byte(openqasm), 0o644); err != nil {
		t.Fatal(err)
	}
	specs := []struct {
		spec, heuristic string
		m               int
	}{
		{"[[5,1,3]]", "qspr", 2},
		{"ghz(q=4)", "qspr-center", 25},
		{fmt.Sprintf("qasm(path=%s)", qasmPath), "mc", 2},
	}
	srv := serve.New(serve.Config{Workers: 2, QueueDepth: 8})
	h := srv.Handler()
	for _, fab := range []string{"quale45x85", "small"} {
		for _, sp := range specs {
			name := fab + "/" + sp.spec
			want := cliReport(t,
				"-circuit", sp.spec, "-fabric", fab,
				"-heuristic", sp.heuristic, "-m", fmt.Sprint(sp.m))
			body := fmt.Sprintf(`{"circuit":%q,"fabric":%q,"heuristic":%q,"m":%d}`,
				sp.spec, fab, sp.heuristic, sp.m)
			miss := postServe(t, h, body)
			if miss.Code != http.StatusOK {
				t.Fatalf("%s: served status %d: %s", name, miss.Code, miss.Body.String())
			}
			if !bytes.Equal(miss.Body.Bytes(), want) {
				t.Errorf("%s: served bytes != CLI report:\n got %s\nwant %s",
					name, miss.Body.Bytes(), want)
			}
			hit := postServe(t, h, body)
			if got := hit.Header().Get("X-Cache"); got != "hit" {
				t.Errorf("%s: repeat X-Cache %q, want hit", name, got)
			}
			if !bytes.Equal(hit.Body.Bytes(), miss.Body.Bytes()) {
				t.Errorf("%s: cached hit differs from cold miss", name)
			}
		}
	}
}

// TestReportMatchesServiceInline: an inline program POSTed verbatim
// gets the same content-addressed identity — and the same bytes — as
// `qspr -qasm <file> -report -`, with and without the trace.
func TestReportMatchesServiceInline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	qasmPath := filepath.Join(t.TempDir(), "inline.qasm")
	src := "OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\n"
	if err := os.WriteFile(qasmPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Config{Workers: 1, QueueDepth: 4})
	h := srv.Handler()

	want := cliReport(t, "-qasm", qasmPath, "-fabric", "small", "-heuristic", "qspr-center")
	got := postServe(t, h, fmt.Sprintf(`{"qasm":%q,"fabric":"small","heuristic":"qspr-center"}`, src))
	if got.Code != http.StatusOK {
		t.Fatalf("inline: %d: %s", got.Code, got.Body.String())
	}
	if !bytes.Equal(got.Body.Bytes(), want) {
		t.Errorf("inline served bytes != CLI -qasm report:\n got %s\nwant %s", got.Body.Bytes(), want)
	}

	wantTr := cliReport(t, "-qasm", qasmPath, "-fabric", "small", "-heuristic", "qspr-center", "-trace")
	gotTr := postServe(t, h, fmt.Sprintf(`{"qasm":%q,"fabric":"small","heuristic":"qspr-center","trace":true}`, src))
	if gotTr.Code != http.StatusOK {
		t.Fatalf("inline trace: %d: %s", gotTr.Code, gotTr.Body.String())
	}
	if !bytes.Equal(gotTr.Body.Bytes(), wantTr) {
		t.Errorf("traced inline served bytes != CLI report")
	}
	if bytes.Equal(gotTr.Body.Bytes(), want) {
		t.Error("traced report unexpectedly equals untraced report")
	}
}

// TestReportFileWritten: -report <path> writes the report file and
// keeps the human-readable output on stdout.
func TestReportFileWritten(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	path := filepath.Join(t.TempDir(), "report.json")
	var out, errb bytes.Buffer
	code := run([]string{"-circuit", "ghz(q=4)", "-fabric", "small",
		"-heuristic", "qspr-center", "-report", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("code %d: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	want := cliReport(t, "-circuit", "ghz(q=4)", "-fabric", "small", "-heuristic", "qspr-center")
	if !bytes.Equal(data, want) {
		t.Errorf("-report file differs from -report -:\n%s\n%s", data, want)
	}
	if !strings.Contains(out.String(), "execution latency:") {
		t.Error("-report <path> suppressed the human-readable output")
	}
}

func TestListIncludesFamilies(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list failed: %s", errb.String())
	}
	for _, b := range circuits.All() {
		if !strings.Contains(out.String(), b.Name) {
			t.Errorf("-list missing %s", b.Name)
		}
	}
	if !strings.Contains(out.String(), "rand(q=") {
		t.Error("-list missing generator families")
	}
}

// TestBackendFlag: the swap backend maps from the CLI, unknown
// backends get the shared diagnostic listing the valid names (the
// same list qsprbench and qsprd print), and -noise scores the run.
func TestBackendFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-circuit", "ghz(q=4)", "-heuristic", "qspr-center", "-backend", "swap"}, &out, &errb); code != 0 {
		t.Fatalf("swap backend run failed: %s", errb.String())
	}
	if !strings.Contains(out.String(), "backend:          swap") {
		t.Errorf("output does not echo the backend:\n%s", out.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-circuit", "ghz(q=4)", "-backend", "warp"}, &out, &errb); code != 1 {
		t.Error("unknown backend accepted")
	}
	for _, name := range core.BackendNames() {
		if !strings.Contains(errb.String(), name) {
			t.Errorf("diagnostic %q does not list %q", errb.String(), name)
		}
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-circuit", "ghz(q=4)", "-heuristic", "qspr-center", "-noise", "default"}, &out, &errb); code != 0 {
		t.Fatalf("noise-scored run failed: %s", errb.String())
	}
	if !strings.Contains(out.String(), "p_fail:") {
		t.Errorf("noise-scored run prints no p_fail:\n%s", out.String())
	}
	// -pareto is a sweep flag; a noiseless -pareto sweep is rejected
	// with a hint before any mapping runs.
	errb.Reset()
	if code := run([]string{"-circuit", "ghz(q=4),ghz(q=5)", "-heuristic", "qspr-center", "-pareto"}, &out, &errb); code != 1 {
		t.Error("-pareto without -noise accepted")
	}
	if !strings.Contains(errb.String(), "-noise") {
		t.Errorf("pareto hint missing: %q", errb.String())
	}
}

// TestParetoSweep: a noise-scored two-backend sweep emits a Pareto
// report whose bytes are identical across -parallel values.
func TestParetoSweep(t *testing.T) {
	args := func(parallel string) []string {
		return []string{
			"-circuit", "ghz(q=4),ghz(q=6)", "-heuristic", "qspr-center",
			"-backend", "all", "-noise", "default", "-pareto",
			"-format", "json", "-parallel", parallel,
		}
	}
	var out1, out4, errb bytes.Buffer
	if code := run(args("1"), &out1, &errb); code != 0 {
		t.Fatalf("parallel=1: %s", errb.String())
	}
	if code := run(args("4"), &out4, &errb); code != 0 {
		t.Fatalf("parallel=4: %s", errb.String())
	}
	if !bytes.Equal(out1.Bytes(), out4.Bytes()) {
		t.Errorf("Pareto bytes differ across -parallel:\n%s\n%s", out1.String(), out4.String())
	}
	if !strings.Contains(out1.String(), `"pareto"`) || !strings.Contains(out1.String(), `"p_fail"`) {
		t.Errorf("not a Pareto report:\n%s", out1.String())
	}
}
