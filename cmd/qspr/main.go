// Command qspr maps a QASM program onto an ion-trap circuit fabric
// and reports the execution latency, reproducing the QSPR tool of
// Dousti & Pedram (DATE 2012).
//
// Usage:
//
//	qspr -circuit '[[5,1,3]]'                 # built-in benchmark
//	qspr -qasm prog.qasm -heuristic quale     # map a file with QUALE
//	qspr -qasm prog.qasm -fabric fab.txt -m 100 -trace
//	qspr -circuit '[[7,1,3]]' -inner-parallel 8     # parallel MVFB, same result
//	qspr -circuit '[[9,1,3]]' -heuristic portfolio  # race MVFB vs MC vs Center
//	qspr -circuit all -parallel 8 -format csv -out runs.csv
//
// Without -fabric the 45×85 fabric of Fig. 4 is used. -circuit also
// accepts a comma-separated list of benchmarks or 'all'; multiple
// circuits are swept concurrently by internal/experiment and reported
// with -format/-out. Reports and single-run results are byte-identical
// for any -parallel / -inner-parallel values (docs/CONCURRENCY.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/gates"
	"repro/internal/qasm"
	"repro/internal/routegraph"
	"repro/internal/viz"
)

func main() {
	var (
		qasmPath  = flag.String("qasm", "", "QASM program file to map")
		circuitN  = flag.String("circuit", "", "built-in benchmark name, e.g. '[[5,1,3]]' (see -list)")
		list      = flag.Bool("list", false, "list built-in benchmark circuits and exit")
		fabPath   = flag.String("fabric", "", "fabric description file (default: the 45x85 Fig. 4 fabric)")
		heuristic = flag.String("heuristic", "qspr", "mapping heuristic: qspr, qspr-center, mc, quale, qpos, qpos-delay, portfolio")
		m         = flag.Int("m", 25, "random seeds for the MVFB placer / runs for the MC placer")
		seed      = flag.Int64("seed", 1, "random seed")
		showTrace = flag.Bool("trace", false, "print the micro-command trace")
		showStats = flag.Bool("stats", true, "print mapping statistics")
		gantt     = flag.Bool("gantt", false, "print a per-qubit timeline of the trace")
		heatmap   = flag.Bool("heatmap", false, "print a channel-utilization heatmap of the fabric")
		jsonOut   = flag.String("json", "", "write the micro-command trace as JSON to this file ('-' = stdout)")
		parallel  = flag.Int("parallel", 0, "CPU budget for a multi-circuit sweep (0 = all CPU cores); shared with -inner-parallel")
		innerPar  = flag.Int("inner-parallel", 0, "workers within one mapping (MVFB starts / MC trials / portfolio placers); results are byte-identical for any value")
		format    = flag.String("format", "markdown", "sweep report format: json, csv, markdown")
		out       = flag.String("out", "", "write the sweep report to this file instead of stdout")
	)
	flag.Parse()
	if *list {
		for _, b := range circuits.All() {
			fmt.Printf("%-12s %2d qubits, %3d gates (%s)\n",
				b.Name, b.Program.NumQubits(), len(b.Program.Gates()), b.Source)
		}
		return
	}
	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	h, err := experiment.ParseHeuristic(*heuristic)
	if err != nil {
		fatal(err)
	}
	fc, err := experiment.LoadFabric(*fabPath)
	if err != nil {
		fatal(err)
	}
	fab := fc.Fabric
	benches, isSweep, err := sweepCircuits(*qasmPath, *circuitN)
	if err != nil {
		fatal(err)
	}
	if isSweep {
		// Single-run inspection flags have no meaning for a sweep;
		// reject them rather than silently drop the requested output.
		for _, name := range []string{"trace", "gantt", "heatmap", "json"} {
			if setFlags[name] {
				fatal(fmt.Errorf("-%s applies to a single run, not a multi-circuit sweep", name))
			}
		}
		if err := experiment.ValidateFormat(*format); err != nil {
			fatal(err)
		}
		runSweep(benches, fc, h, *m, *seed, *parallel, *innerPar, *format, *out)
		return
	}
	// Conversely, the sweep report flags are never consulted on the
	// single-run path.
	for _, name := range []string{"format", "out"} {
		if setFlags[name] {
			fatal(fmt.Errorf("-%s applies to a multi-circuit sweep (-circuit all or a comma-separated list)", name))
		}
	}
	prog, err := loadProgram(*qasmPath, *circuitN)
	if err != nil {
		fatal(err)
	}
	// On a single run -parallel doubles as the inner worker count (it
	// was this command's only parallelism knob before -inner-parallel
	// existed); either way the result is bit-identical to sequential.
	inner := *innerPar
	if inner == 0 {
		inner = *parallel
	}
	res, err := core.Map(prog, fab, core.Options{Heuristic: h, Seeds: *m, Seed: *seed, InnerParallel: inner})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("heuristic:        %s\n", res.Heuristic)
	fmt.Printf("fabric:           %s\n", fab.Stats())
	fmt.Printf("circuit:          %d qubits, %d gates\n", prog.NumQubits(), len(prog.Gates()))
	fmt.Printf("ideal baseline:   %v\n", res.Ideal)
	fmt.Printf("execution latency:%v\n", res.Latency)
	fmt.Printf("overhead:         %v (T_routing + T_congestion)\n", res.Overhead())
	fmt.Printf("placement runs:   %d\n", res.Runs)
	if res.PortfolioWinner != "" {
		fmt.Printf("portfolio winner: %s\n", res.PortfolioWinner)
	}
	fmt.Printf("cpu runtime:      %v\n", res.Runtime)
	if *showStats {
		s := res.Mapping.Stats
		fmt.Printf("moves/turns:      %d / %d\n", s.Moves, s.Turns)
		fmt.Printf("qubit trips:      %d (blocked issues: %d)\n", s.RoutedQubitTrips, s.Blocked)
		fmt.Printf("delay split:      gate %v, routing %v, congestion-wait %v\n",
			s.GateDelay, s.RoutingDelay, s.CongestionDelay)
	}
	if *gantt {
		fmt.Println()
		fmt.Print(viz.Gantt(res.Mapping.Trace, prog.NumQubits(), 100))
	}
	if *heatmap {
		rg := routegraph.New(fab, gates.Default(), routegraph.Options{TurnAware: true})
		fmt.Println()
		fmt.Print(viz.Heatmap(res.Mapping.Trace, rg))
		fmt.Println("busiest channels:")
		for _, tc := range viz.TopChannels(res.Mapping.Trace, rg, 5) {
			ch := fab.Channels[tc.Channel]
			fmt.Printf("  channel %d (%s at %v): %v\n", tc.Channel, ch.Orientation, ch.Cells[0], tc.Time)
		}
	}
	if *showTrace {
		fmt.Print(res.Mapping.Trace.String())
	}
	if *jsonOut != "" {
		w := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := res.Mapping.Trace.WriteJSON(w); err != nil {
			fatal(err)
		}
	}
}

func loadProgram(path, name string) (*qasm.Program, error) {
	switch {
	case path != "" && name != "":
		return nil, fmt.Errorf("use either -qasm or -circuit, not both")
	case path != "":
		return qasm.ParseFile(path)
	case name != "":
		b, err := circuits.ByName(name)
		if err != nil {
			return nil, err
		}
		return b.Program, nil
	default:
		return nil, fmt.Errorf("one of -qasm or -circuit is required (try -list)")
	}
}

// sweepCircuits reports whether -circuit names more than one
// benchmark ("all" or a comma-separated list) and resolves them.
// Commas inside brackets are part of a single code label like
// "[[5,1,3]]", so a lone "[[5,1,3]]" is not a sweep.
func sweepCircuits(qasmPath, name string) ([]circuits.Benchmark, bool, error) {
	if qasmPath != "" || name == "" {
		return nil, false, nil
	}
	if !strings.EqualFold(strings.TrimSpace(name), "all") &&
		len(experiment.SplitCircuitList(name)) < 2 {
		return nil, false, nil
	}
	benches, err := experiment.SelectCircuits(name)
	return benches, true, err
}

// runSweep maps every named benchmark concurrently via
// internal/experiment and writes the deterministic report.
func runSweep(benches []circuits.Benchmark, fc experiment.FabricChoice, h core.Heuristic, m int, seed int64, workers, inner int, format, out string) {
	rep, err := experiment.Execute(context.Background(), experiment.Spec{
		Circuits:      benches,
		Fabrics:       []experiment.FabricChoice{fc},
		Heuristics:    []core.Heuristic{h},
		SeedCounts:    []int{m},
		Seed:          seed,
		InnerParallel: inner,
	}, experiment.Options{Workers: workers})
	if err != nil {
		fatal(err)
	}
	if err := rep.WriteFile(format, out); err != nil {
		fatal(err)
	}
	failed := false
	for _, rr := range rep.Results {
		if rr.Err != "" {
			fmt.Fprintf(os.Stderr, "qspr: %s × %s m=%d failed: %s\n",
				rr.Circuit.Name, rr.Heuristic, rr.Seeds, rr.Err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qspr:", err)
	os.Exit(1)
}
