// Command qspr maps a QASM program onto an ion-trap circuit fabric
// and reports the execution latency, reproducing the QSPR tool of
// Dousti & Pedram (DATE 2012).
//
// Usage:
//
//	qspr -circuit '[[5,1,3]]'                 # built-in benchmark
//	qspr -qasm prog.qasm -heuristic quale     # map a file with QUALE
//	qspr -qasm prog.qasm -fabric fab.txt -m 100 -trace
//	qspr -circuit 'rand(q=20,g=400,seed=7)'   # generator-backed family
//	qspr -circuit '[[7,1,3]]' -inner-parallel 8     # parallel MVFB, same result
//	qspr -circuit '[[9,1,3]]' -heuristic portfolio  # race MVFB vs MC vs Center
//	qspr -circuit all -parallel 8 -format csv -out runs.csv
//
// Without -fabric the 45×85 fabric of Fig. 4 is used. -qasm accepts
// both the paper's QUALE-style dialect and OpenQASM 2.0
// (auto-detected). -circuit also accepts generator families
// (-list shows them), a comma-separated list of sources, or 'all';
// multiple circuits are swept concurrently by internal/experiment and
// reported with -format/-out. Reports and single-run results are
// byte-identical for any -parallel / -inner-parallel values
// (docs/CONCURRENCY.md).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/gates"
	"repro/internal/noise"
	"repro/internal/qasm"
	"repro/internal/routegraph"
	"repro/internal/serve"
	"repro/internal/viz"
)

// main is the only os.Exit in this command: run returns instead of
// exiting so deferred flushes/closes of -out and -json writers always
// execute (bare os.Exit would skip them and truncate the files).
func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qspr", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		qasmPath  = fs.String("qasm", "", "QASM program file to map (QUALE dialect or OpenQASM 2.0)")
		circuitN  = fs.String("circuit", "", "circuit source: built-in name, generator family, or a comma-separated list (see -list)")
		list      = fs.Bool("list", false, "list built-in benchmark circuits and generator families, then exit")
		fabPath   = fs.String("fabric", "", "fabric description file (default: the 45x85 Fig. 4 fabric)")
		heuristic = fs.String("heuristic", "qspr", "mapping heuristic: "+strings.Join(experiment.HeuristicNames(), ", "))
		backend   = fs.String("backend", "ion", "mapping backend: "+strings.Join(core.BackendNames(), ", ")+"; a sweep also accepts a comma-separated list or 'all'")
		noiseSpec = fs.String("noise", "", "score mappings with the noise model and report p_fail: 'default' or comma-separated overrides (1q=, 2q=, move=, turn=, decay=)")
		pareto    = fs.Bool("pareto", false, "report only the per-circuit×fabric Pareto front over (latency, p_fail); needs a sweep with -noise")
		m         = fs.Int("m", 25, "random seeds for the MVFB placer / runs for the MC placer")
		seed      = fs.Int64("seed", 1, "random seed")
		annMoves  = fs.Int("anneal-moves", 0, "annealing placer: proposed moves per restart chain (0 = 400); >0 also enters the annealer in -heuristic portfolio")
		annRest   = fs.Int("anneal-restarts", 0, "annealing placer: independent restart chains (0 = 4)")
		annCool   = fs.Float64("anneal-cooling", 0, "annealing placer: per-move temperature multiplier in (0,1) (0 = 0.97)")
		showTrace = fs.Bool("trace", false, "print the micro-command trace")
		showStats = fs.Bool("stats", true, "print mapping statistics")
		gantt     = fs.Bool("gantt", false, "print a per-qubit timeline of the trace")
		heatmap   = fs.Bool("heatmap", false, "print a channel-utilization heatmap of the fabric")
		jsonOut   = fs.String("json", "", "write the micro-command trace as JSON to this file ('-' = stdout)")
		report    = fs.String("report", "", "write the deterministic mapping report (the qsprd /map response bytes) to this file; '-' writes it to stdout instead of the human-readable output")
		parallel  = fs.Int("parallel", 0, "CPU budget for a multi-circuit sweep (0 = all CPU cores); shared with -inner-parallel")
		innerPar  = fs.Int("inner-parallel", 0, "workers within one mapping (MVFB starts / MC trials / portfolio placers); results are byte-identical for any value")
		format    = fs.String("format", "markdown", "sweep report format: json, csv, markdown")
		out       = fs.String("out", "", "write the sweep report to this file instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *list {
		for _, b := range circuits.All() {
			fmt.Fprintf(stdout, "%-12s %2d qubits, %3d gates (%s)\n",
				b.Name, b.Program.NumQubits(), len(b.Program.Gates()), b.Source)
		}
		fmt.Fprintln(stdout, "\ngenerator families (usable anywhere a circuit name is):")
		for _, f := range circuits.Families() {
			fmt.Fprintf(stdout, "  %s\n", f)
		}
		return 0
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "qspr:", err)
		return 1
	}
	setFlags := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	h, err := experiment.ParseHeuristic(*heuristic)
	if err != nil {
		return fail(err)
	}
	fc, err := experiment.LoadFabric(*fabPath)
	if err != nil {
		return fail(err)
	}
	fab := fc.Fabric
	var np *noise.Params
	if *noiseSpec != "" {
		p, err := noise.Parse(*noiseSpec)
		if err != nil {
			return fail(err)
		}
		np = &p
	}
	benches, isSweep, err := sweepCircuits(*qasmPath, *circuitN)
	if err != nil {
		return fail(err)
	}
	if isSweep {
		// Single-run inspection flags have no meaning for a sweep;
		// reject them rather than silently drop the requested output.
		for _, name := range []string{"trace", "gantt", "heatmap", "json", "report"} {
			if setFlags[name] {
				return fail(fmt.Errorf("-%s applies to a single run, not a multi-circuit sweep", name))
			}
		}
		if err := experiment.ValidateFormat(*format); err != nil {
			return fail(err)
		}
		backends, err := experiment.ParseBackends(*backend)
		if err != nil {
			return fail(err)
		}
		if *pareto && np == nil {
			return fail(fmt.Errorf("-pareto needs a noise-scored sweep: add -noise (e.g. -noise default)"))
		}
		return runSweep(stdout, stderr, fail, benches, fc, h, backends, np, *pareto, *m, *seed, *parallel, *innerPar, *format, *out,
			*annMoves, *annRest, *annCool)
	}
	// Conversely, the sweep report flags are never consulted on the
	// single-run path.
	for _, name := range []string{"format", "out", "pareto"} {
		if setFlags[name] {
			return fail(fmt.Errorf("-%s applies to a multi-circuit sweep (-circuit all or a comma-separated list)", name))
		}
	}
	be, err := core.CanonicalBackend(*backend)
	if err != nil {
		return fail(err)
	}
	prog, circuit, err := loadProgram(*qasmPath, *circuitN)
	if err != nil {
		return fail(err)
	}
	// On a single run -parallel doubles as the inner worker count (it
	// was this command's only parallelism knob before -inner-parallel
	// existed); either way the result is bit-identical to sequential.
	inner := *innerPar
	if inner == 0 {
		inner = *parallel
	}
	opts := core.Options{
		Heuristic: h, Seeds: *m, Seed: *seed, InnerParallel: inner,
		AnnealMoves: *annMoves, AnnealRestarts: *annRest, AnnealCooling: *annCool,
		Backend: be,
	}
	res, err := core.Map(prog, fab, opts)
	if err != nil {
		return fail(err)
	}
	if *report != "" {
		// The deterministic report: byte-identical to the qsprd /map
		// response for the same circuit × fabric × options. With
		// '-report -' it IS the output — the human-readable lines
		// below (which include wall-clock runtime) are suppressed so
		// stdout can be diffed against the service.
		if err := writeReport(res, circuit, fc.Name, opts, *showTrace, *report, stdout, np); err != nil {
			return fail(err)
		}
		if *report == "-" {
			return 0
		}
	}
	fmt.Fprintf(stdout, "heuristic:        %s\n", res.Heuristic)
	fmt.Fprintf(stdout, "backend:          %s\n", core.BackendDisplayName(be))
	fmt.Fprintf(stdout, "fabric:           %s\n", fab.Stats())
	fmt.Fprintf(stdout, "circuit:          %d qubits, %d gates\n", prog.NumQubits(), len(prog.Gates()))
	fmt.Fprintf(stdout, "ideal baseline:   %v\n", res.Ideal)
	fmt.Fprintf(stdout, "execution latency:%v\n", res.Latency)
	fmt.Fprintf(stdout, "overhead:         %v (T_routing + T_congestion)\n", res.Overhead())
	fmt.Fprintf(stdout, "placement runs:   %d\n", res.Runs)
	if np != nil {
		pf, err := noise.PFail(res.Mapping.Trace, prog.NumQubits(), *np)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "p_fail:           %g\n", pf)
	}
	if res.PortfolioWinner != "" {
		fmt.Fprintf(stdout, "portfolio winner: %s\n", res.PortfolioWinner)
	}
	fmt.Fprintf(stdout, "cpu runtime:      %v\n", res.Runtime)
	if *showStats {
		s := res.Mapping.Stats
		fmt.Fprintf(stdout, "moves/turns:      %d / %d\n", s.Moves, s.Turns)
		fmt.Fprintf(stdout, "qubit trips:      %d (blocked issues: %d)\n", s.RoutedQubitTrips, s.Blocked)
		fmt.Fprintf(stdout, "delay split:      gate %v, routing %v, congestion-wait %v\n",
			s.GateDelay, s.RoutingDelay, s.CongestionDelay)
	}
	if *gantt {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, viz.Gantt(res.Mapping.Trace, prog.NumQubits(), 100))
	}
	if *heatmap {
		rg := routegraph.New(fab, gates.Default(), routegraph.Options{TurnAware: true})
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, viz.Heatmap(res.Mapping.Trace, rg))
		fmt.Fprintln(stdout, "busiest channels:")
		for _, tc := range viz.TopChannels(res.Mapping.Trace, rg, 5) {
			ch := fab.Channels[tc.Channel]
			fmt.Fprintf(stdout, "  channel %d (%s at %v): %v\n", tc.Channel, ch.Orientation, ch.Cells[0], tc.Time)
		}
	}
	if *showTrace {
		fmt.Fprint(stdout, res.Mapping.Trace.String())
	}
	if *jsonOut != "" {
		if err := writeTraceJSON(res, *jsonOut, stdout); err != nil {
			return fail(err)
		}
	}
	return 0
}

// writeTraceJSON writes the trace to path ('-' = stdout), flushing
// and closing on every path — including write errors — so a failure
// can never truncate the file silently.
func writeTraceJSON(res *core.Result, path string, stdout io.Writer) error {
	if path == "-" {
		return res.Mapping.Trace.WriteJSON(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.Mapping.Trace.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadProgram resolves the single-run program plus its canonical
// report name: the registry's canonical spec for -circuit, the
// content-addressed inline name for -qasm — the same identity the
// qsprd service derives, so CLI and served reports agree on the
// circuit field (and on cache keys) for identical inputs.
func loadProgram(path, name string) (*qasm.Program, string, error) {
	switch {
	case path != "" && name != "":
		return nil, "", fmt.Errorf("use either -qasm or -circuit, not both")
	case path != "":
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, "", err
		}
		prog, err := qasm.ParseString(string(src))
		if err != nil {
			return nil, "", fmt.Errorf("%s: %w", path, err)
		}
		return prog, serve.InlineName(src), nil
	case name != "":
		b, err := circuits.Resolve(name)
		if err != nil {
			return nil, "", err
		}
		return b.Program, b.Name, nil
	default:
		return nil, "", fmt.Errorf("one of -qasm or -circuit is required (try -list)")
	}
}

// writeReport renders the deterministic serve.Report to path ('-' =
// stdout), mirroring writeTraceJSON's no-silent-truncation rules.
func writeReport(res *core.Result, circuit, fabricName string, opts core.Options, withTrace bool, path string, stdout io.Writer, np *noise.Params) error {
	rep, err := serve.NewReport(circuit, fabricName, opts, res, withTrace, np)
	if err != nil {
		return err
	}
	if path == "-" {
		return rep.Encode(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sweepCircuits reports whether -circuit names more than one
// benchmark ("all" or a comma-separated list) and resolves them.
// Commas inside brackets or parentheses are part of a single source
// spec like "[[5,1,3]]" or "rand(q=8,g=40)", so a lone spec is not a
// sweep.
func sweepCircuits(qasmPath, name string) ([]circuits.Benchmark, bool, error) {
	if qasmPath != "" || name == "" {
		return nil, false, nil
	}
	if !strings.EqualFold(strings.TrimSpace(name), "all") {
		parts, err := experiment.SplitCircuitList(name)
		if err != nil {
			return nil, false, err
		}
		if len(parts) < 2 {
			return nil, false, nil
		}
	}
	benches, err := experiment.SelectCircuits(name)
	return benches, true, err
}

// runSweep maps every named benchmark concurrently via
// internal/experiment and writes the deterministic report. fail is
// run's error reporter (one definition of the exit protocol).
func runSweep(stdout, stderr io.Writer, fail func(error) int, benches []circuits.Benchmark, fc experiment.FabricChoice, h core.Heuristic, backends []string, np *noise.Params, pareto bool, m int, seed int64, workers, inner int, format, out string, annMoves, annRestarts int, annCooling float64) int {
	rep, err := experiment.Execute(context.Background(), experiment.Spec{
		Circuits:       benches,
		Fabrics:        []experiment.FabricChoice{fc},
		Heuristics:     []core.Heuristic{h},
		Backends:       backends,
		Noise:          np,
		SeedCounts:     []int{m},
		Seed:           seed,
		InnerParallel:  inner,
		AnnealMoves:    annMoves,
		AnnealRestarts: annRestarts,
		AnnealCooling:  annCooling,
	}, experiment.Options{Workers: workers})
	if err != nil {
		return fail(err)
	}
	if pareto {
		if out == "" {
			err = rep.WritePareto(stdout, format)
		} else {
			err = rep.WriteParetoFile(format, out)
		}
	} else if out == "" {
		err = rep.Write(stdout, format)
	} else {
		err = rep.WriteFile(format, out)
	}
	if err != nil {
		return fail(err)
	}
	code := 0
	for _, rr := range rep.Results {
		if rr.Err != "" {
			fmt.Fprintf(stderr, "qspr: %s × %s m=%d failed: %s\n",
				rr.Circuit.Name, rr.Heuristic, rr.Seeds, rr.Err)
			code = 1
		}
	}
	return code
}
