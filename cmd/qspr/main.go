// Command qspr maps a QASM program onto an ion-trap circuit fabric
// and reports the execution latency, reproducing the QSPR tool of
// Dousti & Pedram (DATE 2012).
//
// Usage:
//
//	qspr -circuit '[[5,1,3]]'                 # built-in benchmark
//	qspr -qasm prog.qasm -heuristic quale     # map a file with QUALE
//	qspr -qasm prog.qasm -fabric fab.txt -m 100 -trace
//
// Without -fabric the 45×85 fabric of Fig. 4 is used.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/gates"
	"repro/internal/qasm"
	"repro/internal/routegraph"
	"repro/internal/viz"
)

func main() {
	var (
		qasmPath  = flag.String("qasm", "", "QASM program file to map")
		circuitN  = flag.String("circuit", "", "built-in benchmark name, e.g. '[[5,1,3]]' (see -list)")
		list      = flag.Bool("list", false, "list built-in benchmark circuits and exit")
		fabPath   = flag.String("fabric", "", "fabric description file (default: the 45x85 Fig. 4 fabric)")
		heuristic = flag.String("heuristic", "qspr", "mapping heuristic: qspr, qspr-center, mc, quale, qpos, qpos-delay")
		m         = flag.Int("m", 25, "random seeds for the MVFB placer / runs for the MC placer")
		seed      = flag.Int64("seed", 1, "random seed")
		showTrace = flag.Bool("trace", false, "print the micro-command trace")
		showStats = flag.Bool("stats", true, "print mapping statistics")
		gantt     = flag.Bool("gantt", false, "print a per-qubit timeline of the trace")
		heatmap   = flag.Bool("heatmap", false, "print a channel-utilization heatmap of the fabric")
		jsonOut   = flag.String("json", "", "write the micro-command trace as JSON to this file ('-' = stdout)")
	)
	flag.Parse()
	if *list {
		for _, b := range circuits.All() {
			fmt.Printf("%-12s %2d qubits, %3d gates (%s)\n",
				b.Name, b.Program.NumQubits(), len(b.Program.Gates()), b.Source)
		}
		return
	}
	prog, err := loadProgram(*qasmPath, *circuitN)
	if err != nil {
		fatal(err)
	}
	fab, err := loadFabric(*fabPath)
	if err != nil {
		fatal(err)
	}
	h, err := parseHeuristic(*heuristic)
	if err != nil {
		fatal(err)
	}
	res, err := core.Map(prog, fab, core.Options{Heuristic: h, Seeds: *m, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("heuristic:        %s\n", res.Heuristic)
	fmt.Printf("fabric:           %s\n", fab.Stats())
	fmt.Printf("circuit:          %d qubits, %d gates\n", prog.NumQubits(), len(prog.Gates()))
	fmt.Printf("ideal baseline:   %v\n", res.Ideal)
	fmt.Printf("execution latency:%v\n", res.Latency)
	fmt.Printf("overhead:         %v (T_routing + T_congestion)\n", res.Overhead())
	fmt.Printf("placement runs:   %d\n", res.Runs)
	fmt.Printf("cpu runtime:      %v\n", res.Runtime)
	if *showStats {
		s := res.Mapping.Stats
		fmt.Printf("moves/turns:      %d / %d\n", s.Moves, s.Turns)
		fmt.Printf("qubit trips:      %d (blocked issues: %d)\n", s.RoutedQubitTrips, s.Blocked)
		fmt.Printf("delay split:      gate %v, routing %v, congestion-wait %v\n",
			s.GateDelay, s.RoutingDelay, s.CongestionDelay)
	}
	if *gantt {
		fmt.Println()
		fmt.Print(viz.Gantt(res.Mapping.Trace, prog.NumQubits(), 100))
	}
	if *heatmap {
		rg := routegraph.New(fab, gates.Default(), routegraph.Options{TurnAware: true})
		fmt.Println()
		fmt.Print(viz.Heatmap(res.Mapping.Trace, rg))
		fmt.Println("busiest channels:")
		for _, tc := range viz.TopChannels(res.Mapping.Trace, rg, 5) {
			ch := fab.Channels[tc.Channel]
			fmt.Printf("  channel %d (%s at %v): %v\n", tc.Channel, ch.Orientation, ch.Cells[0], tc.Time)
		}
	}
	if *showTrace {
		fmt.Print(res.Mapping.Trace.String())
	}
	if *jsonOut != "" {
		w := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := res.Mapping.Trace.WriteJSON(w); err != nil {
			fatal(err)
		}
	}
}

func loadProgram(path, name string) (*qasm.Program, error) {
	switch {
	case path != "" && name != "":
		return nil, fmt.Errorf("use either -qasm or -circuit, not both")
	case path != "":
		return qasm.ParseFile(path)
	case name != "":
		b, err := circuits.ByName(name)
		if err != nil {
			return nil, err
		}
		return b.Program, nil
	default:
		return nil, fmt.Errorf("one of -qasm or -circuit is required (try -list)")
	}
}

func loadFabric(path string) (*fabric.Fabric, error) {
	if path == "" {
		return fabric.Quale4585(), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return fabric.ParseText(f)
}

func parseHeuristic(s string) (core.Heuristic, error) {
	switch strings.ToLower(s) {
	case "qspr":
		return core.QSPR, nil
	case "qspr-center", "center":
		return core.QSPRCenter, nil
	case "mc", "montecarlo", "monte-carlo":
		return core.MonteCarlo, nil
	case "quale":
		return core.QUALE, nil
	case "qpos":
		return core.QPOS, nil
	case "qpos-delay", "qposdelay":
		return core.QPOSDelay, nil
	}
	return 0, fmt.Errorf("unknown heuristic %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qspr:", err)
	os.Exit(1)
}
