// Command qsprd is the long-running QSPR mapping service: an HTTP
// facade over the mapper with per-worker warm simulator state and a
// content-addressed result cache.
//
// Usage:
//
//	qsprd -listen :8080
//	curl -s -d '{"circuit":"[[5,1,3]]"}' localhost:8080/map
//	curl -s localhost:8080/metrics
//
// POST /map takes a JSON request naming a circuit (a registry spec in
// "circuit", or an inline QUALE/OpenQASM 2.0 program in "qasm"), an
// optional "fabric" (quale45x85, small) and the qspr knobs
// (heuristic, backend, m, seed, patience, inner_parallel, noise,
// trace). "backend" selects the target architecture (ion, swap);
// "noise", a params object, scores the mapping so the report's
// metrics carry p_fail. The response is the deterministic mapping
// report — byte-identical to `qspr -report -` for the same inputs. Repeated requests are served
// from the cache (X-Cache: hit); a full queue answers 429 with
// Retry-After. GET /metrics exposes counters, cache hit rate, queue
// depth and latency quantiles; GET /healthz is the liveness probe.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qsprd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen  = fs.String("listen", ":8080", "address to serve HTTP on")
		workers = fs.Int("workers", 2, "warm mapper pool size (concurrent mappings)")
		queue   = fs.Int("queue", 64, "requests that may wait for a mapper before 429")
		entries = fs.Int("cache", 1024, "result cache entries per tier (FIFO eviction)")
		budget  = fs.Int("budget", 0, "total CPU budget shared by all workers (0 = workers, i.e. sequential mappings)")
		mapTO   = fs.Duration("map-timeout", 0, "per-request mapping deadline; past it the request answers 504 (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	srv := serve.New(serve.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *entries,
		Budget:       *budget,
		MapTimeout:   *mapTO,
	})
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(stderr, "qsprd:", err)
		return 1
	}
	hs := &http.Server{Handler: srv.Handler()}
	// The listener is up before the address is announced, so scripts
	// may treat this line as "ready".
	fmt.Fprintf(stdout, "qsprd: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, "qsprd:", err)
			return 1
		}
	case <-ctx.Done():
		stop()
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			fmt.Fprintln(stderr, "qsprd: shutdown:", err)
			return 1
		}
		fmt.Fprintln(stdout, "qsprd: drained, bye")
	}
	return 0
}
