// Command tables regenerates the experimental tables of the QSPR
// paper (DATE 2012) on this reproduction's substrate:
//
//	tables -table 2            # Table 2: Baseline vs QUALE vs QSPR
//	tables -table 1            # Table 1: MVFB vs Monte-Carlo placers
//	tables -table m            # §IV.A sensitivity sweep over m
//	tables -table ablation     # DESIGN.md §5 design-choice ablations
//	tables -table all
//
// Paper values are printed alongside for comparison. Use -m to
// change the placement-seed counts and -quick for a fast pass.
//
// Tables 2 and m are batch sweeps driven by internal/experiment: they
// fan out across all CPU cores (-parallel) and can emit the raw
// per-run report as JSON/CSV/markdown (-format, -out) with bytes
// independent of the worker count.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"text/tabwriter"

	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiment"
	"repro/internal/fabric"
	"repro/internal/gates"
	"repro/internal/place"
	"repro/internal/qidg"
	"repro/internal/sched"
)

// paperTable2 holds the published Table 2 numbers (µs).
var paperTable2 = map[string][3]int{
	"[[5,1,3]]":  {510, 832, 634},
	"[[7,1,3]]":  {510, 798, 610},
	"[[9,1,3]]":  {910, 2216, 1159},
	"[[14,8,3]]": {2500, 7511, 3390},
	"[[19,1,7]]": {2510, 6838, 3393},
	"[[23,1,7]]": {1410, 3738, 2066},
}

// paperTable1MVFB holds published MVFB latencies for m=25 and m=100.
var paperTable1MVFB = map[string][2]int{
	"[[5,1,3]]":  {634, 634},
	"[[7,1,3]]":  {610, 603},
	"[[9,1,3]]":  {1159, 1138},
	"[[14,8,3]]": {3390, 3342},
	"[[19,1,7]]": {3393, 3350},
	"[[23,1,7]]": {2066, 2061},
}

// main is the only os.Exit in this command: run returns an exit code
// so that writers opened for -out are always flushed and closed even
// when a later table fails (a bare os.Exit would skip the deferred
// cleanup and truncate the report).
func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tables", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		table    = fs.String("table", "2", "which table to regenerate: 1, 2, m, ablation, all")
		mList    = fs.String("m", "25,100", "comma-separated seed counts for Table 1")
		seeds    = fs.Int("seeds", 100, "MVFB seeds (m) for QSPR in Table 2")
		quick    = fs.Bool("quick", false, "fast pass with small m")
		parallel = fs.Int("parallel", 0, "worker-pool size for the table 2 / m sweeps (0 = all CPU cores)")
		format   = fs.String("format", "table", "output format, only with -table 2 or m: table, json, csv, markdown")
		out      = fs.String("out", "", "write the report to this file instead of stdout (only with -table 2 or m)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if err := runTables(stdout, *table, *mList, *seeds, *quick, *parallel, *format, *out); err != nil {
		fmt.Fprintln(stderr, "tables:", err)
		return 1
	}
	return 0
}

func runTables(stdout io.Writer, table, mList string, seeds int, quick bool, parallel int, format, out string) error {
	if quick {
		mList = "5,10"
		seeds = 5
	}
	if format != "table" && format != "" {
		if err := experiment.ValidateFormat(format); err != nil {
			return err
		}
		// Raw reports are per-sweep; tables 1/ablation (and "all",
		// which would overwrite one report with the next) only render
		// the human tables.
		if table != "2" && table != "m" {
			return fmt.Errorf("-format %s requires -table 2 or -table m", format)
		}
	} else if out != "" {
		// The human "table" format always prints to stdout; reject
		// -out rather than silently never writing the file.
		return fmt.Errorf("-out requires -format json, csv or markdown")
	}
	ms, err := experiment.ParseSeedCounts(mList)
	if err != nil {
		return err
	}
	fab := fabric.Quale4585()
	switch table {
	case "1":
		return table1(stdout, fab, ms)
	case "2":
		return table2(stdout, fab, seeds, parallel, format, out)
	case "m":
		return mSweep(stdout, fab, parallel, format, out)
	case "ablation":
		return ablation(stdout, fab)
	case "all":
		if err := table2(stdout, fab, seeds, parallel, format, out); err != nil {
			return err
		}
		if err := table1(stdout, fab, ms); err != nil {
			return err
		}
		if err := mSweep(stdout, fab, parallel, format, out); err != nil {
			return err
		}
		return ablation(stdout, fab)
	default:
		return fmt.Errorf("unknown table %q", table)
	}
}

// sweep runs a spec through the experiment worker pool and aborts on
// any per-run failure (the paper tables need every cell).
func sweep(spec experiment.Spec, workers int) (*experiment.Report, error) {
	rep, err := experiment.Execute(context.Background(), spec, experiment.Options{Workers: workers})
	if err != nil {
		return nil, err
	}
	for _, rr := range rep.Results {
		if rr.Err != "" {
			return nil, fmt.Errorf("%s × %s m=%d: %s", rr.Circuit.Name, rr.Heuristic, rr.Seeds, rr.Err)
		}
	}
	return rep, nil
}

// emit writes the raw per-run report in the requested format, either
// to stdout or to -out. Returns false for the human "table" format,
// which the caller renders itself.
func emit(stdout io.Writer, rep *experiment.Report, format, out string) (bool, error) {
	if format == "table" || format == "" {
		return false, nil
	}
	if out == "" {
		return true, rep.Write(stdout, format)
	}
	return true, rep.WriteFile(format, out)
}

func table2(stdout io.Writer, fab *fabric.Fabric, seeds, workers int, format, out string) error {
	rep, err := sweep(experiment.Spec{
		Circuits:   circuits.All(),
		Fabrics:    []experiment.FabricChoice{{Name: "quale45x85", Fabric: fab}},
		Heuristics: []core.Heuristic{core.QUALE, core.QSPR},
		SeedCounts: []int{seeds},
	}, workers)
	if err != nil {
		return err
	}
	if done, err := emit(stdout, rep, format, out); done || err != nil {
		return err
	}
	fmt.Fprintf(stdout, "Table 2: execution latency of mapped QECC circuits (QSPR m=%d)\n", seeds)
	w := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "circuit\tbaseline\tQUALE\tQSPR\timprove%\tpaper-baseline\tpaper-QUALE\tpaper-QSPR\tpaper-improve%")
	for _, r := range rep.Comparison() {
		p := paperTable2[r.Circuit]
		pImp := 100 * float64(p[1]-p[2]) / float64(p[1])
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.1f\t%d\t%d\t%d\t%.1f\n",
			r.Circuit, r.IdealUS, r.QualeUS, r.QsprUS, r.ImprovePct, p[0], p[1], p[2], pImp)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(stdout)
	return nil
}

func table1(stdout io.Writer, fab *fabric.Fabric, ms []int) error {
	for mi, m := range ms {
		fmt.Fprintf(stdout, "Table 1 (m=%d): MVFB vs Monte-Carlo placer\n", m)
		w := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "circuit\tplacer\tlatency(µs)\truntime(ms)\truns\tpaper-latency(µs)")
		for _, b := range circuits.All() {
			mvfb, err := core.Map(b.Program, fab, core.Options{Heuristic: core.QSPR, Seeds: m})
			if err != nil {
				return err
			}
			// Table 1 protocol: the MC placer gets exactly twice the
			// number of MVFB *iterations* (forward+backward pairs),
			// i.e. the same number of placement runs MVFB performed,
			// which is why the paper reports near-equal CPU runtimes.
			mc, err := core.MonteCarloRuns(b.Program, fab, mvfb.Runs, 1, nil)
			if err != nil {
				return err
			}
			paper := ""
			if mi < 2 {
				paper = strconv.Itoa(paperTable1MVFB[b.Name][mi])
			}
			fmt.Fprintf(w, "%s\tMVFB\t%d\t%d\t%d\t%s\n",
				b.Name, mvfb.Latency, mvfb.Runtime.Milliseconds(), mvfb.Runs, paper)
			fmt.Fprintf(w, "\tMC\t%d\t%d\t%d\t\n",
				mc.Latency, mc.Runtime.Milliseconds(), mc.Runs)
		}
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
	}
	return nil
}

func mSweep(stdout io.Writer, fab *fabric.Fabric, workers int, format, out string) error {
	b, err := circuits.ByName("[[9,1,3]]")
	if err != nil {
		return err
	}
	rep, err := sweep(experiment.Spec{
		Circuits:   []circuits.Benchmark{b},
		Fabrics:    []experiment.FabricChoice{{Name: "quale45x85", Fabric: fab}},
		Heuristics: []core.Heuristic{core.QSPR},
		SeedCounts: []int{1, 5, 10, 25, 50, 100},
	}, workers)
	if err != nil {
		return err
	}
	if done, err := emit(stdout, rep, format, out); done || err != nil {
		return err
	}
	fmt.Fprintln(stdout, "Sensitivity to m (§IV.A): MVFB best latency on [[9,1,3]]")
	w := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "m\tlatency(µs)\truns\twall(ms)")
	for _, rr := range rep.Results {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\n",
			rr.Seeds, rr.Metrics.LatencyUS, rr.Metrics.PlacementRuns, rr.Wall.Milliseconds())
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if workers != 1 {
		fmt.Fprintln(stdout, "(wall time per run is measured under concurrent execution; use -parallel 1 for the paper's uncontended CPU-runtime scaling)")
	}
	fmt.Fprintln(stdout)
	return nil
}

// ablation measures each QSPR design choice in isolation on two
// circuits (see DESIGN.md §5).
func ablation(stdout io.Writer, fab *fabric.Fabric) error {
	fmt.Fprintln(stdout, "Ablations: QSPR with single design choices reverted (MVFB m=10)")
	configs := []struct {
		name string
		mod  func(*engine.Config)
	}{
		{"full QSPR", func(*engine.Config) {}},
		{"turn-blind router", func(c *engine.Config) { c.TurnAware = false }},
		{"channel capacity 1", func(c *engine.Config) { c.Tech.ChannelCapacity = 1 }},
		{"single moving operand", func(c *engine.Config) { c.BothMove = false; c.MedianTarget = false }},
		{"destination-trap target", func(c *engine.Config) { c.MedianTarget = false }},
		{"priority: dependents only", func(c *engine.Config) { c.Weights = sched.Weights{Dependents: 1} }},
		{"priority: path delay only", func(c *engine.Config) { c.Weights = sched.Weights{PathDelay: 1} }},
	}
	w := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "variant\t[[9,1,3]](µs)\t[[23,1,7]](µs)")
	for _, cfgDesc := range configs {
		var cells []string
		for _, name := range []string{"[[9,1,3]]", "[[23,1,7]]"} {
			b, err := circuits.ByName(name)
			if err != nil {
				return err
			}
			g, err := qidg.Build(b.Program)
			if err != nil {
				return err
			}
			cfg := engine.Config{
				Fabric: fab, Tech: gates.Default(),
				Policy: sched.QSPR, Weights: sched.DefaultWeights(),
				TurnAware: true, BothMove: true, MedianTarget: true,
			}
			cfgDesc.mod(&cfg)
			sol, err := place.MVFB(g, cfg, place.DefaultMVFBOptions(10))
			if err != nil {
				return err
			}
			cells = append(cells, strconv.FormatInt(int64(sol.Result.Latency), 10))
		}
		fmt.Fprintf(w, "%s\t%s\t%s\n", cfgDesc.name, cells[0], cells[1])
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(stdout)
	return nil
}
