package main

import (
	"bytes"
	"testing"
)

// TestRunReturnsInsteadOfExit: every failure path must surface as an
// exit code from run, not a bare os.Exit that would skip deferred
// flushes of -out writers (the same truncation bug cmd/qsprbench
// fixed with this pattern).
func TestRunReturnsInsteadOfExit(t *testing.T) {
	var out, errb bytes.Buffer
	cases := []struct {
		args []string
		want int
	}{
		{[]string{"-table", "bogus"}, 1},
		{[]string{"-format", "yaml"}, 1},
		{[]string{"-format", "csv", "-table", "1"}, 1},
		{[]string{"-out", "x.csv"}, 1}, // -out without a machine format
		{[]string{"-m", "5,5"}, 1},     // duplicate seed counts
		{[]string{"-not-a-flag"}, 2},
	}
	for _, tc := range cases {
		out.Reset()
		errb.Reset()
		if code := run(tc.args, &out, &errb); code != tc.want {
			t.Errorf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.want, errb.String())
		}
		if tc.want == 1 && errb.Len() == 0 {
			t.Errorf("run(%v) failed silently", tc.args)
		}
	}
}
